"""Translating IR variable references into polyhedral array sections.

Every memory access in the program is mapped to an *abstract location key*
plus a :class:`Section` describing which elements it touches:

* local scalars/arrays            → ``("v", proc, name)``, sections in the
  array's own (dim0..dimK) coordinates,
* formal scalars/arrays           → ``("f", proc, name)`` — same coordinate
  convention; mapped to caller locations at call sites,
* COMMON members (scalar or array)→ ``("cm", block)`` with the access
  *flattened* to the block's 1-D element coordinates (column-major, as
  Fortran lays out storage).  Flattening is what lets two differently
  shaped views of a block (hydro2d's ``vz(mp,np)`` vs ``vz1(0:mp,np)``)
  be compared exactly — the heart of the common-block-splitting
  application in paper section 5.5.

Scalar accesses use 0-dimensional sections (the universe system == "the
scalar"); common scalars become single points in block coordinates.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..ir.expressions import ArrayRef, Expression, VarRef
from ..ir.program import Procedure
from ..ir.statements import Statement
from ..ir.symbols import Symbol
from ..poly import Constraint, LinExpr, Section, System, dim
from .symbolic import Env, ProcSymbolic, entry_var, eval_affine

LocKey = Tuple

_aux_counter = itertools.count(1)


def location_key(sym: Symbol) -> LocKey:
    if sym.is_common:
        return ("cm", sym.common_block)
    if sym.is_formal:
        return ("f", sym.proc_name, sym.name)
    return ("v", sym.proc_name, sym.name)


def scalar_section(sym: Symbol) -> Section:
    """The section denoting a whole scalar variable."""
    if sym.is_common:
        return Section([System([
            Constraint.eq(LinExpr.var(dim(0)),
                          LinExpr.constant(sym.common_offset))])])
    return Section.universe()


def entry_env(proc: Procedure) -> Env:
    """Environment mapping each scalar to its procedure-entry value."""
    env = Env()
    for sym in proc.symbols:
        if not sym.is_array and not sym.is_const:
            env.set(sym, LinExpr.var(entry_var(proc.name, sym.name)))
    return env


def declared_bounds(sym: Symbol, proc: Procedure,
                    symbolic: ProcSymbolic
                    ) -> List[Tuple[Optional[LinExpr], Optional[LinExpr]]]:
    """Affine lower/upper bounds of each dimension, evaluated at procedure
    entry (None where not affine or assumed-size)."""
    env = entry_env(proc)
    out: List[Tuple[Optional[LinExpr], Optional[LinExpr]]] = []
    for d in sym.dims:
        lo = eval_affine(d.low, env, symbolic.tags, proc.body.statements[0]
                         if proc.body.statements else None) \
            if d.low is not None else None
        hi = None
        if d.high is not None:
            hi = eval_affine(d.high, env, symbolic.tags,
                             proc.body.statements[0]
                             if proc.body.statements else None)
        out.append((lo, hi))
    return out


def constant_strides(sym: Symbol) -> Optional[List[int]]:
    """Column-major element strides per dimension, if the shape is constant
    (required for COMMON members and reshape mapping)."""
    strides: List[int] = []
    acc = 1
    for d in sym.dims:
        strides.append(acc)
        ext = d.constant_extent()
        if ext is None:
            return None
        acc *= ext
    return strides


def constant_lower_bounds(sym: Symbol) -> Optional[List[int]]:
    from ..ir.expressions import Const
    lows: List[int] = []
    for d in sym.dims:
        if isinstance(d.low, Const) and isinstance(d.low.value, int):
            lows.append(d.low.value)
        else:
            return None
    return lows


def whole_symbol_section(sym: Symbol, proc: Procedure,
                         symbolic: ProcSymbolic) -> Section:
    """The section covering every element of ``sym``."""
    if not sym.is_array:
        return scalar_section(sym)
    if sym.is_common:
        size = sym.constant_size() or 1
        lo = sym.common_offset
        v = LinExpr.var(dim(0))
        return Section([System([Constraint.ge(v, LinExpr.constant(lo)),
                                Constraint.le(v, LinExpr.constant(
                                    lo + size - 1))])])
    cons: List[Constraint] = []
    for k, (lo, hi) in enumerate(declared_bounds(sym, proc, symbolic)):
        v = LinExpr.var(dim(k))
        if lo is not None:
            cons.append(Constraint.ge(v, lo))
        if hi is not None:
            cons.append(Constraint.le(v, hi))
    return Section([System(cons)])


def element_section(ref: ArrayRef, stmt: Statement, proc: Procedure,
                    symbolic: ProcSymbolic) -> Section:
    """Section for one array-element access ``a(e1, .., ek)`` at ``stmt``.

    Non-affine subscripts degrade that dimension to its declared bounds
    ("a non-affine index in a dimension is replaced by a conservative
    approximation: the entire dimension may be accessed", section 5.2.1).
    """
    sym = ref.symbol
    index_values: List[Optional[LinExpr]] = [
        symbolic.affine_index(e, stmt) for e in ref.indices]

    if not sym.is_common:
        bounds = declared_bounds(sym, proc, symbolic)
        cons: List[Constraint] = []
        for k, val in enumerate(index_values):
            v = LinExpr.var(dim(k))
            lo, hi = bounds[k] if k < len(bounds) else (None, None)
            if val is not None:
                cons.append(Constraint.eq(v, val))
            # Fortran accesses are assumed in-bounds: constrain by the
            # declared extent either way (for affine subscripts this bounds
            # otherwise-unknown symbolic terms like a loop limit read from
            # input).
            if lo is not None:
                cons.append(Constraint.ge(v, lo))
            if hi is not None:
                cons.append(Constraint.le(v, hi))
        return Section([System(cons)])

    # COMMON member: flatten to block coordinates.
    strides = constant_strides(sym)
    lows = constant_lower_bounds(sym)
    if strides is None or lows is None:
        return whole_symbol_section(sym, proc, symbolic)
    flat = LinExpr.constant(sym.common_offset)
    cons = []
    aux_vars: List[str] = []
    for k, val in enumerate(index_values):
        ext = sym.dims[k].constant_extent()
        if val is None:
            aux = f"_aux{next(_aux_counter)}"
            aux_vars.append(aux)
            val = LinExpr.var(aux)
        # in-bounds assumption (see the local-array branch above)
        cons.append(Constraint.ge(val, LinExpr.constant(lows[k])))
        if ext is not None:
            cons.append(Constraint.le(
                val, LinExpr.constant(lows[k] + ext - 1)))
        flat = flat + (val - lows[k]) * strides[k]
    cons.append(Constraint.eq(LinExpr.var(dim(0)), flat))
    system = System(cons)
    if aux_vars:
        system = system.project_away(aux_vars)
    return Section([system])


def access_of(ref, stmt: Statement, proc: Procedure,
              symbolic: ProcSymbolic) -> Tuple[LocKey, Section]:
    """(location key, section) for a VarRef or element ArrayRef."""
    if isinstance(ref, VarRef):
        return location_key(ref.symbol), scalar_section(ref.symbol)
    if isinstance(ref, ArrayRef):
        if not ref.indices:
            return (location_key(ref.symbol),
                    whole_symbol_section(ref.symbol, proc, symbolic))
        return (location_key(ref.symbol),
                element_section(ref, stmt, proc, symbolic))
    raise TypeError(f"not an lvalue reference: {ref!r}")
