"""Bottom-up interprocedural array data-flow analysis (paper section 5.2.2.1,
6.2.2).

For every region — statement sequences, IF arms, loop bodies, loops, whole
procedures — this pass computes an :class:`AccessSummary` (⟨R,E,W,M⟩ plus
reduction regions per location).  Loops additionally keep their *body*
summary (per-iteration, parameterized by the loop index term) because the
dependence, privatization, and reduction tests all operate on it.

Interprocedural composition maps callee summaries into caller coordinates
at each call site ("If the formal array parameters are declared differently
from the actual array parameters, the array sections are reshaped across
the procedure boundaries"):

* callee locals are per-invocation storage and vanish from the caller view,
* COMMON locations pass through (already in canonical block-flat coords),
* formal locations are rebased onto the actual argument — identity when
  shapes agree, affine rebasing for 1-D/element-offset actuals, full
  flatten/unflatten for constant-shape reshapes, and a conservative
  whole-array approximation otherwise (may-sets widen, must-sets drop),
* every symbolic term of the callee (entry values, opaque tags) is
  substituted with the caller's call-site value or a fresh call-site tag.

The exposed-read sharpening of section 5.2.2.3 is applied at loop closure:
for call-free loops whose writes are unconditional must-writes and that
carry no anti-dependence on the variable, the written section is subtracted
from the upwards-exposed section (this is what privatizes flo88's psmoo
temporaries).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..ir.expressions import ArrayRef, Expression, VarRef
from ..ir.program import Procedure, Program
from ..ir.statements import (AssignStmt, Block, CallStmt, CycleStmt,
                             ExitStmt, IfStmt, IoStmt, LoopStmt, NoopStmt,
                             ReturnStmt, Statement, StopStmt)
from ..ir.symbols import Symbol
from ..ir.callgraph import CallGraph
from ..poly import Constraint, LinExpr, Section, System, dim
from .access import (LocKey, constant_lower_bounds, constant_strides,
                     declared_bounds, element_section, location_key,
                     scalar_section, whole_symbol_section)
from .dependence import anti_dependence
from .reduction import (ReductionUpdate, classify_assignment,
                        classify_if_minmax)
from .summaries import (AccessSummary, VarSummary, close_summary, join,
                        seq_compose, transfer)
from .symbolic import (ProcSymbolic, SymbolicAnalysis, entry_var, index_var)


def _may_divert(stmt: Statement) -> bool:
    """Can control leave the enclosing statement sequence from inside this
    statement (cycle / exit / return / stop)?"""
    return any(isinstance(s, (CycleStmt, ExitStmt, ReturnStmt, StopStmt))
               for s in stmt.walk())


def _weaken_must(summary: AccessSummary) -> AccessSummary:
    """Drop must-information (statements that may be bypassed)."""
    out = {}
    for key, vs in summary.items():
        w = vs.copy()
        w.must_write = Section.empty()
        out[key] = w
    return AccessSummary(out)


class ArrayDataFlow:
    """Run the bottom-up phase over a whole program."""

    def __init__(self, program: Program,
                 symbolic: Optional[SymbolicAnalysis] = None,
                 callgraph: Optional[CallGraph] = None,
                 key_fn=None, lazy: bool = False):
        self.program = program
        self.symbolic = symbolic or SymbolicAnalysis(program)
        self.callgraph = callgraph or CallGraph(program)
        # Location-key function: the default merges all views of a COMMON
        # block into one canonical location; the common-block splitter
        # passes a view-attributed key function instead (section 5.5).
        self.key_fn = key_fn or location_key
        self.proc_summary: Dict[str, AccessSummary] = {}
        self.loop_body_summary: Dict[int, AccessSummary] = {}
        self.loop_summary: Dict[int, AccessSummary] = {}
        # summary from the *end of each subregion node* to the end of its
        # enclosing region, needed by the top-down liveness phase (S_{r,n})
        self.after_in_region: Dict[int, AccessSummary] = {}
        # per-statement summaries (immutable once computed) memoized for
        # the liveness variants that re-query them
        self._stmt_memo: Dict[int, AccessSummary] = {}
        # Procedures whose bodies were actually walked (vs. summaries
        # installed wholesale by ``summary_loader``).  Only a walked
        # procedure has its side tables (``after_in_region``,
        # ``loop_body_summary``, ``_stmt_memo``) populated.
        self._walked: set = set()
        # Optional cache hooks (installed by the incremental analyzer).
        # ``summary_loader(name) -> Optional[AccessSummary]`` may satisfy
        # a flat summary request without a body walk;
        # ``summary_saver(name, summary)`` observes every fresh walk.
        self.summary_loader = None
        self.summary_saver = None
        if not lazy:
            self._run()

    # -- driver ------------------------------------------------------------
    def _run(self) -> None:
        self.summarize_all()

    def summarize_all(self) -> None:
        """Summarize every procedure (idempotent; bottom-up order)."""
        for proc_name in self.callgraph.bottom_up_order():
            self.summary_of(proc_name)

    def summary_of(self, proc_name: str) -> AccessSummary:
        """Demand-driven per-procedure summary.  Recurses through call
        sites (the call graph is acyclic), so in lazy mode only the
        transitive-callee cone of the queried procedure is summarized —
        the unit of reuse for the incremental analyzer.

        A flat summary is all a *call site* needs (`_summarize_call`
        renames every opaque term to fresh caller tags anyway), so this
        consults ``summary_loader`` first.  Callers that need the side
        tables — liveness walks suffixes of the enclosing region — must
        use :meth:`ensure_walked` instead."""
        got = self.proc_summary.get(proc_name)
        if got is None:
            if self.summary_loader is not None:
                got = self.summary_loader(proc_name)
                if got is not None:
                    self.proc_summary[proc_name] = got
                    return got
            got = self._walk(proc_name)
        return got

    def ensure_walked(self, proc_name: str) -> AccessSummary:
        """Summary of *proc_name* with its side tables populated.  A
        cache-loaded flat summary is discarded and the body re-walked:
        the statement-level tables it lacks feed the liveness phase."""
        if proc_name not in self._walked:
            return self._walk(proc_name)
        return self.proc_summary[proc_name]

    def walk_all(self) -> None:
        """Walk every procedure body (the whole-program liveness
        variants need side tables for all procedures, so the summary
        cache cannot help them)."""
        for proc_name in self.callgraph.bottom_up_order():
            self.ensure_walked(proc_name)

    def _walk(self, proc_name: str) -> AccessSummary:
        proc = self.program.procedures[proc_name]
        psym = self.symbolic.result(proc)
        got = self._summarize_block(proc.body, proc, psym)
        self.proc_summary[proc_name] = got
        self._walked.add(proc_name)
        if self.summary_saver is not None:
            self.summary_saver(proc_name, got)
        return got

    # -- block / statement summaries -----------------------------------------
    def _summarize_block(self, block: Block, proc: Procedure,
                         psym: ProcSymbolic) -> AccessSummary:
        """Sequential composition of a statement list.  Also records, for
        loop and call nodes, the summary of everything *after* the node up
        to the end of this block (used by the liveness top-down phase)."""
        stmts = block.statements
        summaries = [self._summarize_stmt(s, proc, psym) for s in stmts]

        # Once a statement may divert control, everything after it is
        # conditionally executed: drop its must-writes.
        diverted = False
        for k, stmt in enumerate(stmts):
            if diverted:
                summaries[k] = _weaken_must(summaries[k])
            if _may_divert(stmt):
                diverted = True

        # Suffix summaries for S_{r,n} (after node n to end of block).
        suffix = AccessSummary.empty()
        for k in range(len(stmts) - 1, -1, -1):
            stmt = stmts[k]
            if isinstance(stmt, (LoopStmt, CallStmt, IfStmt)):
                self.after_in_region[stmt.stmt_id] = suffix
            suffix = seq_compose(summaries[k], suffix)
        return suffix

    def _summarize_stmt(self, stmt: Statement, proc: Procedure,
                        psym: ProcSymbolic) -> AccessSummary:
        cached = self._stmt_memo.get(stmt.stmt_id)
        if cached is not None:
            return cached
        out = self._summarize_stmt_uncached(stmt, proc, psym)
        self._stmt_memo[stmt.stmt_id] = out
        return out

    def _summarize_stmt_uncached(self, stmt: Statement, proc: Procedure,
                                 psym: ProcSymbolic) -> AccessSummary:
        if isinstance(stmt, AssignStmt):
            return self._summarize_assign(stmt, proc, psym)
        if isinstance(stmt, IfStmt):
            return self._summarize_if(stmt, proc, psym)
        if isinstance(stmt, LoopStmt):
            return self._summarize_loop(stmt, proc, psym)
        if isinstance(stmt, CallStmt):
            return self._summarize_call(stmt, proc, psym)
        if isinstance(stmt, IoStmt):
            return self._summarize_io(stmt, proc, psym)
        return AccessSummary.empty()

    # -- expression reads -----------------------------------------------------
    def _constrain_by_loops(self, section: Section, stmt: Statement,
                            psym: ProcSymbolic) -> Section:
        """Add the bound constraints of every enclosing loop whose index
        variable appears in the section.  The access only executes when
        those bounds hold, so this loses nothing and keeps member-group
        refinement and dependence tests from seeing phantom index values."""
        from ..ir.statements import enclosing_loops
        from .symbolic import index_var
        cons: List[Constraint] = []
        free = set()
        for system in section.systems:
            free.update(system.variables())
        for loop in enclosing_loops(stmt):
            iv = index_var(loop)
            if iv not in free:
                continue
            low, high, step = psym.loop_bounds.get(loop.stmt_id,
                                                   (None, None, None))
            v = LinExpr.var(iv)
            ascending = step is None or step > 0
            if low is not None:
                cons.append(Constraint.ge(v, low) if ascending
                            else Constraint.le(v, low))
            if high is not None:
                cons.append(Constraint.le(v, high) if ascending
                            else Constraint.ge(v, high))
        if not cons:
            return section
        return section.constrain(*cons)

    def _reads_of_exprs(self, exprs: List[Expression], stmt: Statement,
                        proc: Procedure, psym: ProcSymbolic) -> AccessSummary:
        acc = AccessSummary.empty()
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, VarRef):
                    if node.symbol.is_const:
                        continue
                    acc.add(self.key_fn(node.symbol),
                            VarSummary.for_read(scalar_section(node.symbol),
                                                node.symbol.name))
                elif isinstance(node, ArrayRef):
                    sec = (element_section(node, stmt, proc, psym)
                           if node.indices else
                           whole_symbol_section(node.symbol, proc, psym))
                    sec = self._constrain_by_loops(sec, stmt, psym)
                    acc.add(self.key_fn(node.symbol),
                            VarSummary.for_read(sec, node.symbol.name))
        return acc

    # -- assignments ------------------------------------------------------------
    def _summarize_assign(self, stmt: AssignStmt, proc: Procedure,
                          psym: ProcSymbolic) -> AccessSummary:
        red = classify_assignment(stmt)
        target = stmt.target
        index_exprs = list(target.indices) if isinstance(target, ArrayRef) \
            else []
        if red is not None:
            reads = self._reads_of_exprs(red.other_reads + index_exprs,
                                         stmt, proc, psym)
            key, sec = self._target_access(target, stmt, proc, psym)
            update = AccessSummary()
            update.add(key, VarSummary.for_reduction(red.op, sec,
                                                     target.symbol.name))
            return seq_compose(reads, update)
        reads = self._reads_of_exprs([stmt.value] + index_exprs, stmt, proc,
                                     psym)
        key, sec = self._target_access(target, stmt, proc, psym)
        write = AccessSummary()
        write.add(key, VarSummary.for_write(sec, target.symbol.name,
                                            must=True))
        return seq_compose(reads, write)

    def _target_access(self, target, stmt, proc, psym
                       ) -> Tuple[LocKey, Section]:
        if isinstance(target, VarRef):
            return (self.key_fn(target.symbol),
                    scalar_section(target.symbol))
        sec = element_section(target, stmt, proc, psym)
        return (self.key_fn(target.symbol),
                self._constrain_by_loops(sec, stmt, psym))

    # -- IF ------------------------------------------------------------------
    def _summarize_if(self, stmt: IfStmt, proc: Procedure,
                      psym: ProcSymbolic) -> AccessSummary:
        red = classify_if_minmax(stmt)
        if red is not None:
            # IF (e .LT. t) t = e — the guard read of t *is* the
            # commutative update's read; e is a plain read.
            reads = self._reads_of_exprs(
                red.other_reads + (list(red.target.indices)
                                   if isinstance(red.target, ArrayRef)
                                   else []),
                stmt, proc, psym)
            key, sec = self._target_access(red.target,
                                           stmt.arms[0][1].statements[0],
                                           proc, psym)
            update = AccessSummary()
            update.add(key, VarSummary.for_reduction(
                red.op, sec, red.target.symbol.name))
            return seq_compose(reads, update)

        cond_reads = self._reads_of_exprs([c for c, _ in stmt.arms], stmt,
                                          proc, psym)
        merged: Optional[AccessSummary] = None
        for _, body in stmt.arms:
            s = self._summarize_block(body, proc, psym)
            merged = s if merged is None else join(merged, s)
        if stmt.else_block is not None:
            merged = join(merged, self._summarize_block(stmt.else_block,
                                                        proc, psym))
        else:
            merged = join(merged, AccessSummary.empty())
        return seq_compose(cond_reads, merged)

    # -- loops --------------------------------------------------------------
    def _summarize_loop(self, loop: LoopStmt, proc: Procedure,
                        psym: ProcSymbolic) -> AccessSummary:
        bound_exprs = [loop.low, loop.high] + (
            [loop.step] if loop.step is not None else [])
        bound_reads = self._reads_of_exprs(bound_exprs, loop, proc, psym)

        body = self._summarize_block(loop.body, proc, psym)
        self.loop_body_summary[loop.stmt_id] = body

        low, high, step = psym.loop_bounds.get(loop.stmt_id,
                                               (None, None, None))
        closed = close_summary(body, index_var(loop), low, high, step)

        # Section 5.2.2.3 sharpening of upwards-exposed reads.
        if not loop.contains_call():
            for key, vs_body in body.items():
                vs = closed.vars.get(key)
                if vs is None or vs.exposed.is_empty():
                    continue
                unconditional = vs_body.must_write.contains(
                    vs_body.may_write)
                # "all of the write operations must precede any reads to
                # the same location": requires no anti-dependence either
                # across iterations or WITHIN one (an exposed read whose
                # own iteration later writes the same element — e.g.
                # `a(j) = a(j)` — is not covered by the writes; found by
                # the soundness fuzzer).
                same_iter_anti = not vs_body.exposed.intersect(
                    vs_body.may_write).is_empty()
                if not vs_body.may_write.is_empty() and unconditional \
                        and not same_iter_anti \
                        and not anti_dependence(vs_body, loop, psym):
                    vs.exposed = vs.exposed.subtract(vs.must_write)

        self.loop_summary[loop.stmt_id] = closed
        return seq_compose(bound_reads, closed)

    # -- I/O -----------------------------------------------------------------
    def _summarize_io(self, stmt: IoStmt, proc: Procedure,
                      psym: ProcSymbolic) -> AccessSummary:
        if stmt.kind == "print":
            return self._reads_of_exprs(stmt.items, stmt, proc, psym)
        acc = AccessSummary.empty()
        for item in stmt.items:
            if isinstance(item, VarRef):
                acc.add(self.key_fn(item.symbol),
                        VarSummary.for_write(scalar_section(item.symbol),
                                             item.symbol.name, must=True))
            elif isinstance(item, ArrayRef):
                idx_reads = self._reads_of_exprs(list(item.indices), stmt,
                                                 proc, psym)
                acc = seq_compose(acc, idx_reads)
                sec = (element_section(item, stmt, proc, psym)
                       if item.indices else
                       whole_symbol_section(item.symbol, proc, psym))
                acc.add(self.key_fn(item.symbol),
                        VarSummary.for_write(sec, item.symbol.name,
                                             must=bool(item.indices)))
        return acc

    # -- calls ---------------------------------------------------------------
    def _summarize_call(self, call: CallStmt, proc: Procedure,
                        psym: ProcSymbolic) -> AccessSummary:
        callee = self.program.procedures[call.callee]
        callee_summary = self.summary_of(call.callee)
        # Reads performed evaluating expression actuals (lvalue actuals are
        # accessed per the callee summary, not here; their subscript
        # expressions are read by the caller though).
        arg_read_exprs: List[Expression] = []
        for actual in call.args:
            if isinstance(actual, VarRef):
                continue
            if isinstance(actual, ArrayRef):
                arg_read_exprs.extend(actual.indices)
                continue
            arg_read_exprs.append(actual)
        reads = self._reads_of_exprs(arg_read_exprs, call, proc, psym)
        mapped = self._map_callee(callee_summary, call, proc, psym, callee)
        constrained = AccessSummary({
            key: VarSummary(
                read=self._constrain_by_loops(vs.read, call, psym),
                exposed=self._constrain_by_loops(vs.exposed, call, psym),
                may_write=self._constrain_by_loops(vs.may_write, call, psym),
                must_write=self._constrain_by_loops(vs.must_write, call,
                                                    psym),
                reductions={op: self._constrain_by_loops(sec, call, psym)
                            for op, sec in vs.reductions.items()},
                names=set(vs.names))
            for key, vs in mapped.items()})
        return seq_compose(reads, constrained)

    # ----- callee summary mapping -------------------------------------------
    def _map_callee(self, summary: AccessSummary, call: CallStmt,
                    caller: Procedure, caller_psym: ProcSymbolic,
                    callee: Procedure) -> AccessSummary:
        subst = _TermSubstitution(self, call, caller, caller_psym, callee)
        out = AccessSummary.empty()
        for key, vs in summary.items():
            kind = key[0]
            if kind == "v":
                continue                      # callee-private storage
            vs2 = subst.apply_to_var_summary(vs)
            if kind == "cm":
                out.add(key, vs2)
                continue
            # formal location: rebase onto the actual argument
            fname = key[2]
            pos = next((k for k, f in enumerate(callee.formals)
                        if f.name == fname), None)
            if pos is None or pos >= len(call.args):
                continue
            mapped = self._map_formal(vs2, callee.formals[pos],
                                      call.args[pos], call, caller,
                                      caller_psym, callee, subst)
            if mapped is not None:
                tkey, tvs = mapped
                out.add(tkey, tvs)
        return out

    def _map_formal(self, vs: VarSummary, formal: Symbol, actual,
                    call: CallStmt, caller: Procedure,
                    caller_psym: ProcSymbolic, callee: Procedure,
                    subst: "_TermSubstitution"
                    ) -> Optional[Tuple[LocKey, VarSummary]]:
        # Scalar formal ------------------------------------------------------
        if not formal.is_array:
            if isinstance(actual, VarRef):
                tsym = actual.symbol
                conv = lambda sec: (scalar_section(tsym)
                                    if not sec.is_empty() else Section.empty())
                return self.key_fn(tsym), _convert(vs, conv, keep_must=True,
                                                   name=tsym.name)
            if isinstance(actual, ArrayRef) and actual.indices:
                tsym = actual.symbol
                esec = element_section(actual, call, caller, caller_psym)
                conv = lambda sec: (esec if not sec.is_empty()
                                    else Section.empty())
                return self.key_fn(tsym), _convert(vs, conv, keep_must=True,
                                                   name=tsym.name)
            # expression actual: a read-only temporary; writes vanish and
            # reads were already collected from the expression itself.
            return None

        # Array formal -------------------------------------------------------
        if not isinstance(actual, ArrayRef):
            return None                       # scalar-to-array mismatch
        tsym = actual.symbol

        elem_off: Optional[LinExpr] = None    # flat offset of the actual
        if actual.indices:
            elem_off = self._element_flat_offset(actual, call, caller,
                                                 caller_psym)
        else:
            elem_off = LinExpr.constant(0)

        transform = None
        if elem_off is not None:
            transform = self._formal_transform(formal, tsym, elem_off,
                                               caller, caller_psym, callee,
                                               subst,
                                               is_element=bool(actual.indices))
        tkey = self.key_fn(tsym)
        if transform is None:
            whole = whole_symbol_section(tsym, caller, caller_psym)
            conv = lambda sec: (whole if not sec.is_empty()
                                else Section.empty())
            return tkey, _convert(vs, conv, keep_must=False, name=tsym.name)
        return tkey, _convert(vs, transform, keep_must=True, name=tsym.name)

    def _element_flat_offset(self, actual: ArrayRef, call: CallStmt,
                             caller: Procedure, caller_psym: ProcSymbolic
                             ) -> Optional[LinExpr]:
        """Flat offset (in elements, from the actual array's first element)
        of an element actual like ``aif3(k1)``."""
        tsym = actual.symbol
        strides = constant_strides(tsym)
        lows = constant_lower_bounds(tsym)
        values = [caller_psym.affine_index(e, call) for e in actual.indices]
        if any(v is None for v in values):
            return None
        if strides is None or lows is None:
            if len(values) == 1:
                bounds = declared_bounds(tsym, caller, caller_psym)
                lo = bounds[0][0] if bounds else None
                if lo is None:
                    return None
                return values[0] - lo
            return None
        off = LinExpr.constant(0)
        for k, v in enumerate(values):
            off = off + (v - lows[k]) * strides[k]
        return off

    def _formal_transform(self, formal: Symbol, tsym: Symbol,
                          elem_off: LinExpr, caller: Procedure,
                          caller_psym: ProcSymbolic, callee: Procedure,
                          subst: "_TermSubstitution", is_element: bool):
        """Build a Section→Section transform from formal coordinates into
        the actual's coordinates, or None for the conservative fallback."""
        callee_psym = self.symbolic.result(callee)

        # Formal flat position relative to the formal's first element.
        f_strides = constant_strides(formal)
        f_lows = constant_lower_bounds(formal)
        f_bounds = declared_bounds(formal, callee, callee_psym)

        def formal_flat() -> Optional[Tuple[LinExpr, List[str]]]:
            """flat = Σ stride_k (d_k − lo_k), with dims renamed to temps."""
            if formal.rank == 1:
                lo = f_bounds[0][0] if f_bounds else None
                if lo is None:
                    return None
                lo_sub = subst.substitute_linexpr(lo)
                if lo_sub is None:
                    return None
                tmp = "_t0"
                return LinExpr.var(tmp) - lo_sub, [tmp]
            if f_strides is None or f_lows is None:
                return None
            expr = LinExpr.constant(0)
            tmps = []
            for k in range(formal.rank):
                tmp = f"_t{k}"
                tmps.append(tmp)
                expr = expr + (LinExpr.var(tmp) - f_lows[k]) * f_strides[k]
            return expr, tmps

        got = formal_flat()
        if got is None:
            return None
        flat_expr, tmps = got
        rename_map = {dim(k): tmps[k] for k in range(formal.rank)}

        if tsym.is_common:
            base = LinExpr.constant(tsym.common_offset) + elem_off
            size = tsym.constant_size() or 1
            span_lo = LinExpr.constant(tsym.common_offset)
            span_hi = LinExpr.constant(tsym.common_offset + size - 1)

            def conv_common(sec: Section) -> Section:
                moved = sec.rename(rename_map)
                d0 = LinExpr.var(dim(0))
                # in-bounds assumption: the callee never writes outside
                # the actual's member span
                moved = moved.constrain(
                    Constraint.eq(d0, base + flat_expr),
                    Constraint.ge(d0, span_lo),
                    Constraint.le(d0, span_hi))
                return moved.project_away(tmps)

            return conv_common

        # local / formal target array in the caller
        t_strides = constant_strides(tsym)
        t_lows = constant_lower_bounds(tsym)

        # Identity case: same rank, matching bounds, whole-array actual.
        if not is_element and formal.rank == tsym.rank:
            t_bounds = declared_bounds(tsym, caller, caller_psym)
            same = True
            for k in range(formal.rank):
                flo = subst.substitute_linexpr(f_bounds[k][0]) \
                    if f_bounds[k][0] is not None else None
                fhi = subst.substitute_linexpr(f_bounds[k][1]) \
                    if f_bounds[k][1] is not None else None
                tlo, thi = t_bounds[k]
                if flo is None or tlo is None or flo != tlo:
                    same = False
                    break
                if k < formal.rank - 1 and (fhi is None or thi is None
                                            or fhi != thi):
                    same = False
                    break
            if same:
                return lambda sec: sec

        if tsym.rank == 1:
            t_bounds = declared_bounds(tsym, caller, caller_psym)
            tlo = t_bounds[0][0] if t_bounds else None
            if tlo is None:
                return None

            thi = t_bounds[0][1] if t_bounds else None

            def conv_1d(sec: Section) -> Section:
                moved = sec.rename(rename_map)
                d0 = LinExpr.var(dim(0))
                cons = [Constraint.eq(d0, tlo + elem_off + flat_expr),
                        Constraint.ge(d0, tlo)]
                if thi is not None:
                    cons.append(Constraint.le(d0, thi))
                moved = moved.constrain(*cons)
                return moved.project_away(tmps)

            return conv_1d

        if t_strides is None or t_lows is None:
            return None
        t_bounds_c: List[Tuple[int, int]] = []
        for k, d in enumerate(tsym.dims):
            ext = d.constant_extent()
            if ext is None:
                return None
            t_bounds_c.append((t_lows[k], t_lows[k] + ext - 1))

        def conv_reshape(sec: Section) -> Section:
            moved = sec.rename(rename_map)
            t_flat = LinExpr.constant(0)
            cons = []
            for k in range(tsym.rank):
                v = LinExpr.var(dim(k))
                t_flat = t_flat + (v - t_lows[k]) * t_strides[k]
                cons.append(Constraint.ge(v, LinExpr.constant(
                    t_bounds_c[k][0])))
                cons.append(Constraint.le(v, LinExpr.constant(
                    t_bounds_c[k][1])))
            cons.append(Constraint.eq(t_flat, elem_off + flat_expr))
            moved = moved.constrain(*cons)
            return moved.project_away(tmps)

        return conv_reshape


def _convert(vs: VarSummary, conv, keep_must: bool, name: str) -> VarSummary:
    out = VarSummary(
        read=conv(vs.read),
        exposed=conv(vs.exposed),
        may_write=conv(vs.may_write),
        must_write=conv(vs.must_write) if keep_must else Section.empty(),
        reductions={op: conv(sec) for op, sec in vs.reductions.items()},
        names={name})
    return out.validated()


class _TermSubstitution:
    """Rewrites callee symbolic terms into caller terms at one call site."""

    def __init__(self, dataflow: ArrayDataFlow, call: CallStmt,
                 caller: Procedure, caller_psym: ProcSymbolic,
                 callee: Procedure):
        self.dataflow = dataflow
        self.call = call
        self.caller = caller
        self.caller_psym = caller_psym
        self.callee = callee
        self._map: Dict[str, Optional[LinExpr]] = {}
        self._fresh: Dict[str, str] = {}

    def _caller_value_of(self, term: str) -> Optional[LinExpr]:
        if term in self._map:
            return self._map[term]
        value: Optional[LinExpr] = None
        if term.startswith(f"in:{self.callee.name}:"):
            sname = term.split(":", 2)[2]
            sym = self.callee.symbols.lookup(sname)
            if sym is not None and not sym.is_array:
                if sym.is_formal:
                    pos = next((k for k, f in enumerate(self.callee.formals)
                                if f is sym), None)
                    if pos is not None and pos < len(self.call.args):
                        env = self.caller_psym.env_at(self.call)
                        from .symbolic import eval_affine
                        value = eval_affine(self.call.args[pos], env,
                                            self.caller_psym.tags, self.call)
                elif sym.is_common:
                    for csym in self.caller.symbols:
                        if (csym.is_common
                                and csym.common_block == sym.common_block
                                and csym.common_offset == sym.common_offset
                                and not csym.is_array):
                            env = self.caller_psym.env_at(self.call)
                            value = env.get(csym)
                            break
        self._map[term] = value
        return value

    def _fresh_tag(self, term: str) -> str:
        got = self._fresh.get(term)
        if got is None:
            got = self.dataflow.symbolic.tags.fresh(self.call)
            self._fresh[term] = got
        return got

    def substitute_linexpr(self, expr: LinExpr) -> Optional[LinExpr]:
        out = expr
        for term in list(expr.coeffs):
            if term.startswith("_"):
                continue
            value = self._caller_value_of(term)
            if value is None:
                return None
            out = out.substitute(term, value)
        return out

    def apply_to_section(self, section: Section) -> Section:
        out = section
        terms = set()
        for system in section.systems:
            for name in system.variables():
                if not name.startswith("_"):
                    terms.add(name)
        for term in terms:
            value = self._caller_value_of(term)
            if value is not None:
                out = out.substitute(term, value)
            else:
                out = out.rename({term: self._fresh_tag(term)})
        return out

    def apply_to_var_summary(self, vs: VarSummary) -> VarSummary:
        return VarSummary(
            read=self.apply_to_section(vs.read),
            exposed=self.apply_to_section(vs.exposed),
            may_write=self.apply_to_section(vs.may_write),
            must_write=self.apply_to_section(vs.must_write),
            reductions={op: self.apply_to_section(sec)
                        for op, sec in vs.reductions.items()},
            names=set(vs.names))
