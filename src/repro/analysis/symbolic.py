"""Symbolic (affine) analysis of scalar variables.

"The symbolic analysis finds loop invariants and induction variables,
determines affine relationships between variables, and performs constant
propagation" (paper section 2.4).  Its product is, for every statement, an
environment mapping each scalar symbol to an *affine value*: a
:class:`LinExpr` over a small vocabulary of symbolic terms:

* ``in:<proc>:<name>`` — the value of a scalar at procedure entry,
* ``ix:<loop-id>:<name>`` — a loop index inside its loop,
* ``tg:<n>`` — an opaque tag for values the analysis cannot express
  (array loads, intrinsic results, call-modified scalars, control-flow
  merges of differing values).

Tags remember their defining statement, so downstream clients can decide
whether a term is *variant* with respect to a given loop (defined inside
its body) or invariant.  That variance classification is what makes the
polyhedral dependence test (:mod:`repro.analysis.dependence`) sound: variant
terms must be renamed per iteration, invariant terms are shared.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..ir.expressions import (ArrayRef, BinaryOp, Const, Expression,
                              Intrinsic, StrConst, UnaryOp, VarRef)
from ..ir.program import Procedure, Program
from ..ir.statements import (AssignStmt, Block, CallStmt, CycleStmt,
                             ExitStmt, IfStmt, IoStmt, LoopStmt, NoopStmt,
                             ReturnStmt, Statement, StopStmt, enclosing_loops)
from ..ir.symbols import Symbol
from ..poly import LinExpr

_tag_counter = itertools.count(1)


def entry_var(proc_name: str, sym_name: str) -> str:
    return f"in:{proc_name}:{sym_name}"


def index_var(loop: LoopStmt) -> str:
    return f"ix:{loop.stmt_id}:{loop.index.name}"


def is_index_var(name: str) -> bool:
    return name.startswith("ix:")


def index_var_loop_id(name: str) -> int:
    return int(name.split(":")[1])


class TagRegistry:
    """Where each opaque tag was born, for variance queries."""

    def __init__(self) -> None:
        self.def_stmt: Dict[str, Statement] = {}

    def fresh(self, stmt: Statement) -> str:
        tag = f"tg:{next(_tag_counter)}"
        self.def_stmt[tag] = stmt
        return tag

    def is_tag(self, name: str) -> bool:
        return name.startswith("tg:")

    def defined_inside(self, tag: str, loop: LoopStmt) -> bool:
        stmt = self.def_stmt.get(tag)
        if stmt is None:
            return False
        return any(l is loop for l in enclosing_loops(stmt)) or stmt is loop


class Env:
    """Immutable-by-convention symbol → LinExpr environment."""

    __slots__ = ("values",)

    def __init__(self, values: Optional[Dict[Symbol, LinExpr]] = None):
        self.values = dict(values or {})

    def copy(self) -> "Env":
        return Env(self.values)

    def get(self, sym: Symbol) -> Optional[LinExpr]:
        return self.values.get(sym)

    def set(self, sym: Symbol, value: LinExpr) -> None:
        self.values[sym] = value


class ProcSymbolic:
    """Result of the symbolic pass over one procedure."""

    def __init__(self, proc: Procedure, tags: TagRegistry):
        self.proc = proc
        self.tags = tags
        # environment *before* each statement executes
        self.env_before: Dict[int, Env] = {}
        # affine loop bounds (low, high, step) in the loop's own pre-state
        self.loop_bounds: Dict[int, Tuple[Optional[LinExpr],
                                          Optional[LinExpr], Optional[int]]] = {}
        # induction variables per loop: sym -> per-iteration step LinExpr
        self.induction: Dict[int, Dict[Symbol, LinExpr]] = {}

    def env_at(self, stmt: Statement) -> Env:
        return self.env_before.get(stmt.stmt_id, Env())

    def affine_index(self, expr: Expression, stmt: Statement
                     ) -> Optional[LinExpr]:
        """Affine value of a subscript expression at a statement, or None."""
        return eval_affine(expr, self.env_at(stmt), self.tags, stmt)

    def is_variant(self, name: str, loop: LoopStmt) -> bool:
        """Is symbolic term ``name`` iteration-variant w.r.t. ``loop``?"""
        if is_index_var(name):
            lid = index_var_loop_id(name)
            if lid == loop.stmt_id:
                return True
            inner = self.proc.body  # check if that loop is nested in `loop`
            target = None
            for s in loop.body.walk():
                if s.stmt_id == lid:
                    target = s
                    break
            return target is not None
        if self.tags.is_tag(name):
            return self.tags.defined_inside(name, loop)
        return False


class SymbolicAnalysis:
    """Run the forward symbolic pass over every procedure of a program.

    The pass is intraprocedural (scalars modified by calls become opaque),
    applied once per procedure; results are cached on the instance.
    """

    def __init__(self, program: Program):
        self.program = program
        self.tags = TagRegistry()
        self._results: Dict[str, ProcSymbolic] = {}
        self._mod_scalars_cache: Dict[str, Set[str]] = {}

    def result(self, proc: Procedure) -> ProcSymbolic:
        got = self._results.get(proc.name)
        if got is None:
            got = self._analyze(proc)
            self._results[proc.name] = got
        return got

    # -- mod-scalars: which scalar names a call may modify ------------------
    def _modified_scalar_keys(self, proc_name: str) -> Set[str]:
        """Keys of scalars (formal positions as 'arg:<k>', common members as
        'cm:<block>:<offset>') a procedure and its callees may modify."""
        cached = self._mod_scalars_cache.get(proc_name)
        if cached is not None:
            return cached
        self._mod_scalars_cache[proc_name] = set()   # recursion guard
        proc = self.program.procedures[proc_name]
        keys: Set[str] = set()
        formal_pos = {f: k for k, f in enumerate(proc.formals)}

        def key_of(sym: Symbol) -> Optional[str]:
            if sym.is_array:
                return None
            if sym in formal_pos:
                return f"arg:{formal_pos[sym]}"
            if sym.is_common:
                return f"cm:{sym.common_block}:{sym.common_offset}"
            return None

        for stmt in proc.statements():
            if isinstance(stmt, AssignStmt) and isinstance(stmt.target, VarRef):
                k = key_of(stmt.target.symbol)
                if k:
                    keys.add(k)
            elif isinstance(stmt, IoStmt) and stmt.kind == "read":
                for item in stmt.items:
                    if isinstance(item, VarRef):
                        k = key_of(item.symbol)
                        if k:
                            keys.add(k)
            elif isinstance(stmt, CallStmt):
                callee_keys = self._modified_scalar_keys(stmt.callee)
                callee = self.program.procedures[stmt.callee]
                for ck in callee_keys:
                    if ck.startswith("cm:"):
                        keys.add(ck)
                    else:
                        pos = int(ck.split(":")[1])
                        if pos < len(stmt.args):
                            actual = stmt.args[pos]
                            if isinstance(actual, VarRef):
                                k = key_of(actual.symbol)
                                if k:
                                    keys.add(k)
        self._mod_scalars_cache[proc_name] = keys
        return keys

    def call_modifies(self, call: CallStmt, sym: Symbol,
                      caller: Procedure) -> bool:
        """May this call modify scalar ``sym`` of the calling procedure?"""
        if sym.is_array:
            return False
        callee_keys = self._modified_scalar_keys(call.callee)
        if sym.is_common:
            if f"cm:{sym.common_block}:{sym.common_offset}" in callee_keys:
                return True
        for pos, actual in enumerate(call.args):
            if isinstance(actual, VarRef) and actual.symbol is sym:
                if f"arg:{pos}" in callee_keys:
                    return True
        return False

    # -- the forward pass ----------------------------------------------------
    def _analyze(self, proc: Procedure) -> ProcSymbolic:
        result = ProcSymbolic(proc, self.tags)
        env = Env()
        for sym in proc.symbols:
            if not sym.is_array and not sym.is_const:
                env.set(sym, LinExpr.var(entry_var(proc.name, sym.name)))
        self._walk_block(proc.body, env, result, proc)
        return result

    def _walk_block(self, block: Block, env: Env, result: ProcSymbolic,
                    proc: Procedure) -> Env:
        for stmt in block.statements:
            env = self._walk_stmt(stmt, env, result, proc)
        return env

    def _walk_stmt(self, stmt: Statement, env: Env, result: ProcSymbolic,
                   proc: Procedure) -> Env:
        result.env_before[stmt.stmt_id] = env.copy()
        if isinstance(stmt, AssignStmt):
            if isinstance(stmt.target, VarRef):
                value = eval_affine(stmt.value, env, self.tags, stmt)
                new = env.copy()
                new.set(stmt.target.symbol,
                        value if value is not None
                        else LinExpr.var(self.tags.fresh(stmt)))
                return new
            return env
        if isinstance(stmt, CallStmt):
            new = env.copy()
            for sym in list(new.values):
                if self.call_modifies(stmt, sym, proc):
                    new.set(sym, LinExpr.var(self.tags.fresh(stmt)))
            return new
        if isinstance(stmt, IoStmt):
            if stmt.kind == "read":
                new = env.copy()
                for item in stmt.items:
                    if isinstance(item, VarRef):
                        new.set(item.symbol,
                                LinExpr.var(self.tags.fresh(stmt)))
                return new
            return env
        if isinstance(stmt, IfStmt):
            out_envs: List[Env] = []
            for _, body in stmt.arms:
                out_envs.append(self._walk_block(body, env.copy(), result,
                                                 proc))
            if stmt.else_block is not None:
                out_envs.append(self._walk_block(stmt.else_block, env.copy(),
                                                 result, proc))
            else:
                out_envs.append(env)
            return self._merge(out_envs, stmt)
        if isinstance(stmt, LoopStmt):
            return self._walk_loop(stmt, env, result, proc)
        if isinstance(stmt, (CycleStmt, ExitStmt, ReturnStmt, StopStmt,
                             NoopStmt)):
            return env
        return env

    def _merge(self, envs: List[Env], stmt: Statement) -> Env:
        """Join environments at a control-flow merge: symbols with equal
        values keep them; differing values become a fresh opaque tag."""
        if not envs:
            return Env()
        merged = envs[0].copy()
        all_syms = set()
        for e in envs:
            all_syms.update(e.values)
        for sym in all_syms:
            vals = [e.get(sym) for e in envs]
            first = vals[0]
            if all(v is not None and v == first for v in vals):
                merged.set(sym, first)
            else:
                merged.set(sym, LinExpr.var(self.tags.fresh(stmt)))
        return merged

    def _walk_loop(self, loop: LoopStmt, env: Env, result: ProcSymbolic,
                   proc: Procedure) -> Env:
        low = eval_affine(loop.low, env, self.tags, loop)
        high = eval_affine(loop.high, env, self.tags, loop)
        step: Optional[int] = 1
        if loop.step is not None:
            s = eval_affine(loop.step, env, self.tags, loop)
            if s is not None and s.is_constant() and s.const.denominator == 1:
                step = int(s.const)
            else:
                step = None
        result.loop_bounds[loop.stmt_id] = (low, high, step)

        # Iteration-entry environment: kill everything the body may modify
        # (their values depend on the unknown previous iteration), except
        # simple induction variables which we leave opaque too but record.
        body_env = env.copy()
        body_env.set(loop.index, LinExpr.var(index_var(loop)))
        modified = self._scalars_modified_in(loop.body, proc)
        induction = self._find_induction(loop, env)
        result.induction[loop.stmt_id] = induction
        for sym in modified:
            if sym is loop.index:
                continue
            body_env.set(sym, LinExpr.var(self.tags.fresh(loop)))
        self._walk_block(loop.body, body_env, result, proc)

        # After the loop: index and modified scalars are unknown.
        after = env.copy()
        after.set(loop.index, LinExpr.var(self.tags.fresh(loop)))
        for sym in modified:
            after.set(sym, LinExpr.var(self.tags.fresh(loop)))
        return after

    def _scalars_modified_in(self, block: Block, proc: Procedure
                             ) -> Set[Symbol]:
        out: Set[Symbol] = set()
        for stmt in block.walk():
            if isinstance(stmt, AssignStmt) and isinstance(stmt.target,
                                                           VarRef):
                out.add(stmt.target.symbol)
            elif isinstance(stmt, LoopStmt):
                out.add(stmt.index)
            elif isinstance(stmt, IoStmt) and stmt.kind == "read":
                for item in stmt.items:
                    if isinstance(item, VarRef):
                        out.add(item.symbol)
            elif isinstance(stmt, CallStmt):
                for sym in proc.symbols:
                    if not sym.is_array and self.call_modifies(stmt, sym,
                                                               proc):
                        out.add(sym)
        return out

    def _find_induction(self, loop: LoopStmt, env: Env
                        ) -> Dict[Symbol, LinExpr]:
        """Recognize scalars updated exactly once per iteration as
        ``v = v + loop-invariant`` (basic induction variables)."""
        candidates: Dict[Symbol, List[AssignStmt]] = {}
        conditional: Set[Symbol] = set()
        for stmt in loop.body.walk():
            if isinstance(stmt, AssignStmt) and isinstance(stmt.target,
                                                           VarRef):
                sym = stmt.target.symbol
                candidates.setdefault(sym, []).append(stmt)
                if any(isinstance(p, IfStmt) or
                       (isinstance(p, LoopStmt) and p is not loop)
                       for p in _parents_up_to(stmt, loop)):
                    conditional.add(sym)
        modified = set(candidates)
        for s in loop.body.walk():
            if isinstance(s, LoopStmt):
                modified.add(s.index)
        out: Dict[Symbol, LinExpr] = {}
        for sym, stmts in candidates.items():
            if len(stmts) != 1 or sym in conditional:
                continue
            stmt = stmts[0]
            delta = _self_increment(stmt, sym)
            if delta is None:
                continue
            # the increment must be loop invariant: it may not reference
            # anything (re)assigned inside the loop, including the index
            if any(s2 in modified or s2 is loop.index
                   for s2 in delta.referenced_symbols()):
                continue
            val = eval_affine(delta, env, self.tags, stmt)
            if val is not None:
                out[sym] = val
        return out


def _parents_up_to(stmt: Statement, stop: Statement) -> Iterator[Statement]:
    cur = stmt.parent
    while cur is not None and cur is not stop:
        yield cur
        cur = cur.parent


def _self_increment(stmt: AssignStmt, sym: Symbol) -> Optional[Expression]:
    """If stmt is ``sym = sym + delta`` (or ``delta + sym`` / ``sym - d``),
    return delta (negated for subtraction)."""
    v = stmt.value
    if not isinstance(v, BinaryOp) or v.op not in ("+", "-"):
        return None
    left_is_sym = isinstance(v.left, VarRef) and v.left.symbol is sym
    right_is_sym = isinstance(v.right, VarRef) and v.right.symbol is sym
    if left_is_sym and not _mentions(v.right, sym):
        if v.op == "+":
            return v.right
        return UnaryOp("-", v.right)
    if v.op == "+" and right_is_sym and not _mentions(v.left, sym):
        return v.left
    return None


def _mentions(expr: Expression, sym: Symbol) -> bool:
    return any(s is sym for s in expr.referenced_symbols())


def eval_affine(expr: Expression, env: Env, tags: TagRegistry,
                stmt: Statement) -> Optional[LinExpr]:
    """Evaluate an IR expression to a LinExpr in ``env``; None if the value
    is not affine (float arithmetic, array loads, intrinsics, ...)."""
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return None
        if isinstance(expr.value, int):
            return LinExpr.constant(expr.value)
        return None   # float constants never feed subscripts usefully
    if isinstance(expr, VarRef):
        got = env.get(expr.symbol)
        if got is not None:
            return got
        if expr.symbol.is_const:
            v = expr.symbol.const_value
            return LinExpr.constant(v) if isinstance(v, int) else None
        return None
    if isinstance(expr, BinaryOp):
        if expr.op in ("+", "-", "*", "/"):
            left = eval_affine(expr.left, env, tags, stmt)
            right = eval_affine(expr.right, env, tags, stmt)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                if left.is_constant():
                    return right * left.const
                if right.is_constant():
                    return left * right.const
                return None
            if expr.op == "/":
                if right.is_constant() and right.const != 0:
                    # Exact only when division is integral; we accept the
                    # rational value, which is correct whenever the program
                    # divides evenly (typical for index math) and is treated
                    # as non-affine otherwise by integer-only consumers.
                    if left.is_constant():
                        q = left.const / right.const
                        return (LinExpr.constant(q)
                                if q.denominator == 1 else None)
                    return None
                return None
        return None
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            inner = eval_affine(expr.operand, env, tags, stmt)
            return -inner if inner is not None else None
        return None
    if isinstance(expr, (ArrayRef, Intrinsic, StrConst)):
        return None
    return None
