"""Interprocedural array liveness analysis — chapter 5 of the paper.

The bottom-up phase is the array data-flow pass
(:class:`repro.analysis.region_analysis.ArrayDataFlow`); this module adds
the **top-down phase** (Fig 5-3): for every region r it computes
``S_{r0,r}``, the access summary *from the end of r to the end of the
program*, then

    L_r = E(S_{r0,r}) ∩ (W_r ∪ M_r)

— the sections written in r that are still live afterwards.  A variable is
*dead* with respect to a loop when that intersection is empty, enabling

* privatization without finalization (section 5.4),
* common-block live-range splitting (section 5.5),
* array contraction (section 5.6).

Three algorithm variants are provided, matching the precision/efficiency
study of section 5.2.3:

* ``full``            — flow-sensitive, section-precise (the proposed one),
* ``one_bit``         — the top-down phase keeps one bit per variable
  (exposed-after or not); kills disappear,
* ``flow_insensitive``— the top-down phase ignores control flow between
  sibling subregions: live-after(r) = live-after(parent) ∪ exposed(siblings).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.program import Procedure, Program
from ..ir.statements import (Block, CallStmt, IfStmt, LoopStmt, Statement,
                             enclosing_loops)
from ..ir.symbols import Symbol
from ..poly import Section
from .access import LocKey, location_key, whole_symbol_section
from .region_analysis import ArrayDataFlow
from .summaries import (AccessSummary, VarSummary, join, seq_compose,
                        transfer)

FULL = "full"
ONE_BIT = "one_bit"
FLOW_INSENSITIVE = "flow_insensitive"


class LivenessResult:
    """Per-loop liveness facts produced by any of the variants."""

    def __init__(self, variant: str):
        self.variant = variant
        # loop stmt_id -> (location -> section written in loop & live after)
        self.live_written_after: Dict[int, Dict[LocKey, Section]] = {}
        # loop stmt_id -> exposed-after summary (full variant only)
        self.exposed_after: Dict[int, AccessSummary] = {}

    def is_dead_at_exit(self, loop: LoopStmt, key: LocKey) -> bool:
        """Is the location's written data dead at the loop exit?"""
        per_loop = self.live_written_after.get(loop.stmt_id, {})
        sec = per_loop.get(key)
        return sec is None or sec.is_empty()

    def dead_written_locations(self, loop: LoopStmt,
                               written: List[LocKey]) -> List[LocKey]:
        return [k for k in written if self.is_dead_at_exit(loop, k)]


class ArrayLiveness:
    """Top-down liveness over a completed bottom-up :class:`ArrayDataFlow`."""

    def __init__(self, dataflow: ArrayDataFlow, variant: str = FULL,
                 lazy: bool = False):
        if variant not in (FULL, ONE_BIT, FLOW_INSENSITIVE):
            raise ValueError(f"unknown liveness variant {variant!r}")
        self.dataflow = dataflow
        self.program = dataflow.program
        self.variant = variant
        self.result = LivenessResult(variant)
        # S_{r0, proc}: summary from procedure end to program end
        self._after_proc: Dict[str, AccessSummary] = {}
        # S_{r0, loop body} cache (Fig 5-3 regions)
        self._after_body: Dict[int, AccessSummary] = {}
        # 1-bit caches
        self._stmt_ebits: Dict[int, Set[LocKey]] = {}
        self._proc_ebits: Dict[str, Set[LocKey]] = {}
        self._walked: Set[str] = set()
        self._ran_all = False
        # Optional cache hooks (installed by the incremental analyzer).
        # ``after_loader(name) -> Optional[AccessSummary]`` may satisfy an
        # after-proc summary without walking the caller chain;
        # ``after_saver(name, summary)`` observes every fresh computation.
        self.after_loader = None
        self.after_saver = None
        if not lazy:
            self._run()

    # ------------------------------------------------------------------ runs
    def _run(self) -> None:
        self.ensure_all()

    def ensure_all(self) -> None:
        """Record liveness facts for every loop (idempotent)."""
        if self._ran_all:
            return
        self._ran_all = True
        cg = self.dataflow.callgraph
        order = cg.top_down_order()
        if self.variant == FLOW_INSENSITIVE:
            self.dataflow.walk_all()
            self._run_flow_insensitive(order)
            return
        if self.variant == ONE_BIT:
            self.dataflow.walk_all()
            self._run_one_bit(order)
            return
        for proc_name in order:
            self.ensure_proc(proc_name)

    def ensure_proc(self, proc_name: str) -> None:
        """Demand-driven entry point: record liveness for one procedure's
        loops.  In the FULL variant this pulls in exactly the procedure's
        dependency cone — transitive callees (bottom-up summaries) plus
        the continuation closure over its call sites (after-summaries) —
        which is what the incremental analyzer caches per cone.  The
        1-bit / flow-insensitive variants are whole-program push
        algorithms, so they fall back to :meth:`ensure_all`."""
        if self.variant != FULL:
            self.ensure_all()
            return
        if proc_name in self._walked:
            return
        self._walked.add(proc_name)
        proc = self.program.procedures[proc_name]
        self.dataflow.ensure_walked(proc_name)
        after = self._ensure_after_proc(proc_name)
        self._walk_block_top_down(proc.body, proc, after)

    def _ensure_after_proc(self, proc_name: str) -> AccessSummary:
        got = self._after_proc.get(proc_name)
        if got is None:
            if self.after_loader is not None:
                # a cache hit short-circuits the recursive caller-chain
                # walk — the dominant cost of re-planning a leaf edit
                got = self.after_loader(proc_name)
            if got is None:
                got = self._compute_after_proc(proc_name)
                if self.after_saver is not None:
                    self.after_saver(proc_name, got)
            self._after_proc[proc_name] = got
        return got

    # ------------------------------------------------------------ 1-bit
    def _run_one_bit(self, order) -> None:
        """1-bit variant (section 5.2.3.1): the top-down phase keeps one
        bit per variable — exposed-after or not.  With bits there is no
        kill operator ("there is no longer a subtraction (kill) operator
        in the transfer function"), so a must-write between a region and a
        later exposed read no longer rescues deadness; statement *order*
        is still respected, unlike the flow-insensitive variant."""
        pending: Dict[str, Set[LocKey]] = {name: set() for name in order}
        for proc_name in order:
            proc = self.program.procedures[proc_name]
            self._walk_block_one_bit(proc.body, proc,
                                     set(pending[proc_name]), pending)

    def _stmt_exposed_keys(self, stmt: Statement, proc: Procedure
                           ) -> Set[LocKey]:
        """Locations with any upwards-exposed read inside a statement,
        composed WITHOUT kills (the 1-bit bottom-up summary).  Loop and
        call sub-summaries contribute one bit per variable; sibling
        statements OR together."""
        cached = self._stmt_ebits.get(stmt.stmt_id)
        if cached is not None:
            return cached
        psym = self.dataflow.symbolic.result(proc)
        keys: Set[LocKey] = set()
        if isinstance(stmt, LoopStmt):
            summ = self.dataflow.loop_summary.get(stmt.stmt_id,
                                                  AccessSummary.empty())
            keys = {key for key, vs in summ.items()
                    if not vs.exposed.is_empty()}
        elif isinstance(stmt, CallStmt):
            callee = self.program.procedures[stmt.callee]
            for ck in self._proc_exposed_keys(callee):
                if ck[0] == "cm":
                    keys.add(ck)
                elif ck[0] == "f" and ck[1] == stmt.callee:
                    # exposed formal: the actual's location is exposed
                    pos = next((k for k, f in enumerate(callee.formals)
                                if f.name == ck[2]), None)
                    if pos is not None and pos < len(stmt.args):
                        actual = stmt.args[pos]
                        from ..ir.expressions import ArrayRef, VarRef
                        if isinstance(actual, (ArrayRef, VarRef)):
                            keys.add(location_key(actual.symbol))
        elif stmt.children_blocks():
            for expr in stmt.sub_expressions():
                for node in expr.walk():
                    from ..ir.expressions import ArrayRef, VarRef
                    if isinstance(node, (ArrayRef, VarRef)) \
                            and not node.symbol.is_const:
                        keys.add(location_key(node.symbol))
            for child in stmt.children_blocks():
                for s in child.statements:
                    keys |= self._stmt_exposed_keys(s, proc)
        else:
            summ = self.dataflow._summarize_stmt(stmt, proc, psym)
            keys = {key for key, vs in summ.items()
                    if not vs.exposed.is_empty()}
        self._stmt_ebits[stmt.stmt_id] = keys
        return keys

    def _proc_exposed_keys(self, proc: Procedure) -> Set[LocKey]:
        cached = self._proc_ebits.get(proc.name)
        if cached is not None:
            return cached
        self._proc_ebits[proc.name] = set()    # recursion guard
        keys: Set[LocKey] = set()
        for stmt in proc.body.statements:
            keys |= self._stmt_exposed_keys(stmt, proc)
        # callee-local storage is fresh per invocation
        keys = {k for k in keys if k[0] != "v"}
        self._proc_ebits[proc.name] = keys
        return keys

    def _walk_block_one_bit(self, block: Block, proc: Procedure,
                            live_after_block: Set[LocKey],
                            pending: Dict[str, Set[LocKey]]) -> None:
        stmts = block.statements
        # live set after each statement = bits of all later statements
        # plus whatever is live after the whole block
        suffix: List[Set[LocKey]] = [set() for _ in stmts]
        acc = set(live_after_block)
        for k in range(len(stmts) - 1, -1, -1):
            suffix[k] = set(acc)
            acc |= self._stmt_exposed_keys(stmts[k], proc)
        for k, stmt in enumerate(stmts):
            self._visit_one_bit(stmt, proc, suffix[k], pending)

    def _visit_one_bit(self, stmt: Statement, proc: Procedure,
                       live_after: Set[LocKey],
                       pending: Dict[str, Set[LocKey]]) -> None:
        if isinstance(stmt, CallStmt):
            if stmt.callee in pending:
                pending[stmt.callee] |= live_after
            return
        if isinstance(stmt, LoopStmt):
            loop_sum = self.dataflow.loop_summary.get(stmt.stmt_id,
                                                      AccessSummary.empty())
            per_loop: Dict[LocKey, Section] = {}
            for key, vs in loop_sum.items():
                if not vs.writes_anything():
                    continue
                if key in live_after:
                    per_loop[key] = vs.may_write.union(
                        vs.reduction_region())
                else:
                    per_loop[key] = Section.empty()
            self.result.live_written_after[stmt.stmt_id] = per_loop
            # body statements may be followed by later iterations
            reentry = live_after | {
                key for key, vs in loop_sum.items()
                if not vs.exposed.is_empty()}
            self._walk_block_one_bit(stmt.body, proc, reentry, pending)
            return
        for child in stmt.children_blocks():
            self._walk_block_one_bit(child, proc, live_after, pending)

    def _run_flow_insensitive(self, order) -> None:
        """FI top-down phase: liveness is a set of location keys; a
        variable is live after a region if live after the parent region or
        exposed in *any* sibling (order ignored).  Callee live-after sets
        are the union over call sites of the caller-side live sets."""
        pending: Dict[str, Set[LocKey]] = {name: set() for name in order}
        for proc_name in order:
            proc = self.program.procedures[proc_name]
            self._walk_region_flow_insensitive(
                proc.body, proc, pending[proc_name], pending)

    def _compute_after_proc(self, proc_name: str) -> AccessSummary:
        cg = self.dataflow.callgraph
        sites = cg.sites_calling(proc_name)
        if not sites:
            return AccessSummary.empty()
        merged: Optional[AccessSummary] = None
        for call in sites:
            caller = self.program.procedures[call.proc_name]
            # the caller's bottom-up pass records the within-region
            # suffix summaries _after_statement composes, so the caller
            # needs a real walk (a cache-loaded flat summary lacks them)
            self.dataflow.ensure_walked(call.proc_name)
            after_call = self._after_statement(call, caller)
            mapped = self._map_to_callee(after_call, call, proc_name)
            merged = mapped if merged is None else join(merged, mapped)
        return merged or AccessSummary.empty()

    # ------------------------------------------------------- after-summaries
    def _suffix_to_region_end(self, stmt: Statement) -> AccessSummary:
        """S_{Parent(r),n}: accesses from just after ``stmt`` to the end of
        its enclosing region (loop body or procedure body) — the recorded
        within-block suffix composed with the suffixes of enclosing IFs."""
        acc = self.dataflow.after_in_region.get(stmt.stmt_id,
                                                AccessSummary.empty())
        cur = stmt.parent
        while cur is not None and not isinstance(cur, LoopStmt):
            if isinstance(cur, IfStmt):
                acc = seq_compose(acc, self.dataflow.after_in_region.get(
                    cur.stmt_id, AccessSummary.empty()))
            cur = cur.parent
        return acc

    def _after_region(self, stmt: Statement, proc_name: str
                      ) -> AccessSummary:
        """S_{r0,r} for the region enclosing ``stmt``: loop-body regions
        follow Fig 5-3's rule (later iterations of the same body may run,
        then whatever follows the loop)."""
        cur = stmt.parent
        while cur is not None and not isinstance(cur, LoopStmt):
            cur = cur.parent
        if cur is None:
            return self._ensure_after_proc(proc_name)
        loop = cur
        cached = self._after_body.get(loop.stmt_id)
        if cached is not None:
            return cached
        # S_{r0,loop} = T(suffix after the loop within its region,
        #                 S_{r0, parent region})
        after_loop = seq_compose(self._suffix_to_region_end(loop),
                                 self._after_region(loop, proc_name))
        loop_sum = self.dataflow.loop_summary.get(loop.stmt_id,
                                                  AccessSummary.empty())
        out = _merge_loop_reentry(after_loop, loop_sum)
        self._after_body[loop.stmt_id] = out
        return out

    def _after_statement(self, stmt: Statement, proc: Procedure
                         ) -> AccessSummary:
        """S_{r0,stmt}: accesses from just after ``stmt`` to program end —
        the within-region suffix (whose must-writes kill) composed with
        the after-region summary (Fig 5-3's T)."""
        return seq_compose(self._suffix_to_region_end(stmt),
                           self._after_region(stmt, stmt.proc_name))

    # -------------------------------------------------------------- top-down
    def _walk_block_top_down(self, block: Block, proc: Procedure,
                             after_proc: AccessSummary) -> None:
        """Record liveness at every loop exit in the full / 1-bit variants.

        ``_after_statement`` already composes all the pieces, so we simply
        visit every loop."""
        for stmt in block.walk():
            if not isinstance(stmt, LoopStmt):
                continue
            after = self._after_statement(stmt, proc)
            if self.variant == ONE_BIT:
                after = _coarsen_one_bit(after, proc, self)
            self.result.exposed_after[stmt.stmt_id] = after
            self._record_loop(stmt, after)

    def _walk_region_flow_insensitive(self, block: Block, proc: Procedure,
                                      live_after_parent: Set[LocKey],
                                      pending: Dict[str, Set[LocKey]]
                                      ) -> None:
        """Flow-insensitive variant: a variable is live after region r if
        it is live after r's parent or exposed in any sibling of r
        (including r itself) — no ordering, no kills (section 5.2.3.2)."""

        def walk(region_block: Block, live_after: Set[LocKey]) -> None:
            sibling_exposed = self._block_summary_keys(region_block, proc)
            live = live_after | sibling_exposed
            for stmt in region_block.statements:
                self._walk_stmt_flow_insensitive(stmt, live, walk, pending)

        walk(block, set(live_after_parent))

    def _walk_stmt_flow_insensitive(self, stmt: Statement,
                                    live: Set[LocKey], walk,
                                    pending: Dict[str, Set[LocKey]]) -> None:
        if isinstance(stmt, CallStmt):
            if stmt.callee in pending:
                pending[stmt.callee] |= live
            return
        if isinstance(stmt, LoopStmt):
            loop_sum = self.dataflow.loop_summary.get(stmt.stmt_id,
                                                      AccessSummary.empty())
            per_loop: Dict[LocKey, Section] = {}
            for key, vs in loop_sum.items():
                if not vs.writes_anything():
                    continue
                if key in live:
                    per_loop[key] = vs.may_write.union(
                        vs.reduction_region())
                else:
                    per_loop[key] = Section.empty()
            self.result.live_written_after[stmt.stmt_id] = per_loop
            walk(stmt.body, live)
            return
        for child in stmt.children_blocks():
            walk(child, live)

    def _block_summary_keys(self, block: Block, proc: Procedure
                            ) -> Set[LocKey]:
        """Locations with any exposed read in any statement of the block
        (cheap 1-bit bottom-up info reused from the full summaries)."""
        keys: Set[LocKey] = set()
        psym = self.dataflow.symbolic.result(proc)
        for stmt in block.statements:
            s = self.dataflow._summarize_stmt(stmt, proc, psym)
            for key, vs in s.items():
                if not vs.exposed.is_empty():
                    keys.add(key)
        return keys

    def _record_loop(self, loop: LoopStmt, after: AccessSummary) -> None:
        loop_sum = self.dataflow.loop_summary.get(loop.stmt_id,
                                                  AccessSummary.empty())
        per_loop: Dict[LocKey, Section] = {}
        for key, vs in loop_sum.items():
            if not vs.writes_anything():
                continue
            written = vs.may_write.union(vs.reduction_region())
            exposed_after = after.get(key).exposed
            per_loop[key] = written.intersect(exposed_after)
        self.result.live_written_after[loop.stmt_id] = per_loop

    # --------------------------------------------------------- call mapping
    def _map_to_callee(self, after_call: AccessSummary, call: CallStmt,
                       callee_name: str) -> AccessSummary:
        """Translate a caller-side after-summary into callee coordinates.

        COMMON locations pass through unchanged (block-flat coordinates are
        canonical program-wide).  For each array formal, the exposed reads
        on the actual's location are rebased into formal coordinates —
        precisely for the identity case, conservatively (whole formal live)
        whenever the actual's location has any exposed read and the precise
        inverse is unavailable.  Over-approximating liveness is the safe
        direction."""
        callee = self.program.procedures[callee_name]
        caller = self.program.procedures[call.proc_name]
        caller_psym = self.dataflow.symbolic.result(caller)
        callee_psym = self.dataflow.symbolic.result(callee)
        out = AccessSummary.empty()
        for key, vs in after_call.items():
            if key[0] == "cm":
                out.add(key, vs.copy())
        for pos, formal in enumerate(callee.formals):
            if pos >= len(call.args) or not formal.is_array:
                continue
            actual = call.args[pos]
            from ..ir.expressions import ArrayRef
            if not isinstance(actual, ArrayRef):
                continue
            akey = location_key(actual.symbol)
            avs = after_call.get(akey)
            if avs.exposed.is_empty() and avs.read.is_empty() \
                    and avs.may_write.is_empty():
                continue
            fkey = ("f", callee_name, formal.name)
            inv = self._inverse_identity(formal, actual, caller, callee,
                                         caller_psym, callee_psym)
            if inv:
                out.add(fkey, avs.copy())
            else:
                whole = whole_symbol_section(formal, callee, callee_psym)
                conv = (lambda sec: whole if not sec.is_empty()
                        else Section.empty())
                out.add(fkey, VarSummary(
                    read=conv(avs.read), exposed=conv(avs.exposed),
                    may_write=conv(avs.may_write),
                    must_write=Section.empty(),
                    names=set(avs.names)))
        return out

    def _inverse_identity(self, formal: Symbol, actual, caller: Procedure,
                          callee: Procedure, caller_psym, callee_psym
                          ) -> bool:
        """True when formal and actual share coordinates exactly (same rank,
        same lower bounds, whole-array actual, not a common member)."""
        from .access import declared_bounds
        if actual.indices or actual.symbol.is_common:
            return False
        if formal.rank != actual.symbol.rank:
            return False
        fb = declared_bounds(formal, callee, callee_psym)
        ab = declared_bounds(actual.symbol, caller, caller_psym)
        for k in range(formal.rank):
            flo, ahi = fb[k][0], ab[k][0]
            if flo is None or ahi is None:
                return False
            if not (flo.is_constant() and ahi.is_constant()
                    and flo.const == ahi.const):
                return False
        return True


def _merge_loop_reentry(after_in_body: AccessSummary,
                        loop_summary: AccessSummary) -> AccessSummary:
    """Fig 5-3, the loop-body case: the end of a loop body may be followed
    by further iterations of the same body.  S = <R1∪R2, E1∪E2, W1∪W2, M1>
    where 1 = the after-summary, 2 = the loop's own (closed) summary."""
    out: Dict[LocKey, VarSummary] = {}
    for key in set(after_in_body.vars) | set(loop_summary.vars):
        a = after_in_body.get(key)
        b = loop_summary.get(key)
        out[key] = VarSummary(
            read=a.read.union(b.read),
            exposed=a.exposed.union(b.exposed),
            may_write=a.may_write.union(b.may_write),
            must_write=a.must_write,
            reductions={},
            names=a.names | b.names)
    return AccessSummary(out)


def _coarsen_one_bit(after: AccessSummary, proc: Procedure,
                     liveness: ArrayLiveness) -> AccessSummary:
    """1-bit variant: any exposed read after ⇒ the whole variable is live."""
    out: Dict[LocKey, VarSummary] = {}
    psym = liveness.dataflow.symbolic.result(proc)
    for key, vs in after.items():
        if vs.exposed.is_empty():
            out[key] = vs
            continue
        whole = _whole_location(key, proc, liveness, psym)
        out[key] = VarSummary(read=vs.read, exposed=whole,
                              may_write=vs.may_write,
                              must_write=vs.must_write, names=set(vs.names))
    return AccessSummary(out)


def _whole_location(key: LocKey, proc: Procedure, liveness: ArrayLiveness,
                    psym) -> Section:
    if key[0] == "cm":
        block = liveness.program.commons.get(key[1])
        if block is not None and block.size:
            from ..poly import Constraint, LinExpr, System, dim
            v = LinExpr.var(dim(0))
            return Section([System([
                Constraint.ge(v, LinExpr.constant(0)),
                Constraint.le(v, LinExpr.constant(block.size - 1))])])
        return Section.universe()
    owner = liveness.program.procedures.get(key[1])
    if owner is not None:
        sym = owner.symbols.lookup(key[2])
        if sym is not None:
            return whole_symbol_section(
                sym, owner, liveness.dataflow.symbolic.result(owner))
    return Section.universe()


def dead_fraction_per_program(dataflow: ArrayDataFlow, variant: str = FULL
                              ) -> Tuple[int, int, int]:
    """(#loops, #modified locations across loops, #dead at exit) — the raw
    counts behind Fig 5-7."""
    liveness = ArrayLiveness(dataflow, variant)
    n_loops = 0
    n_mod = 0
    n_dead = 0
    for proc in dataflow.program.procedures.values():
        for loop in proc.loops():
            n_loops += 1
            loop_sum = dataflow.loop_summary.get(loop.stmt_id)
            if loop_sum is None:
                continue
            for key, vs in loop_sum.items():
                if not vs.writes_anything():
                    continue
                n_mod += 1
                if liveness.result.is_dead_at_exit(loop, key):
                    n_dead += 1
    return n_loops, n_mod, n_dead
