"""Loop-carried dependence testing on polyhedral body summaries.

Given a loop's per-iteration access summary (sections parameterized by the
loop's index term and by iteration-variant opaque tags), a cross-iteration
conflict between accesses A and B exists iff

    ∃ i1, i2 :  lo <= i1 < i2 <= hi  and  A[i:=i1] ∩ B[i:=i2] ≠ ∅

where *every* iteration-variant term is duplicated per iteration copy and
loop-invariant terms are shared (paper section 2.4's dependence analysis;
variance classification comes from the symbolic analysis).  The tests:

* ``loop_carried_conflict`` — any W(i1) ∩ (R ∪ W)(i2), i1 ≠ i2
  (the loop-parallel test),
* ``flow_into_exposed``    — W(i1) ∩ E(i2), i1 < i2
  (privatizability: do exposed reads receive prior-iteration values?),
* ``anti_dependence``      — R(i1) ∩ W(i2), i1 < i2
  (used by the exposed-read sharpening of section 5.2.2.3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.statements import LoopStmt
from ..poly import Constraint, LinExpr, Section
from .summaries import VarSummary
from .symbolic import ProcSymbolic, index_var


def rename_iteration_copy(section: Section, loop: LoopStmt,
                          symbolic: ProcSymbolic, copy: int) -> Section:
    """Rename every iteration-variant term to its per-copy version."""
    mapping = {}
    for system in section.systems:
        for name in system.variables():
            if name.startswith("_"):
                continue                      # dimension / aux variables
            if name in mapping:
                continue
            if symbolic.is_variant(name, loop):
                mapping[name] = f"{name}${copy}"
    return section.rename(mapping) if mapping else section


def _iteration_constraints(loop: LoopStmt, symbolic: ProcSymbolic,
                           order: str) -> List[Constraint]:
    """Bound + ordering constraints linking iteration copies 1 and 2."""
    ix = index_var(loop)
    i1 = LinExpr.var(f"{ix}$1")
    i2 = LinExpr.var(f"{ix}$2")
    cons: List[Constraint] = []
    low, high, step = symbolic.loop_bounds.get(loop.stmt_id,
                                               (None, None, None))
    ascending = step is None or step > 0
    for iv in (i1, i2):
        if low is not None:
            cons.append(Constraint.ge(iv, low) if ascending
                        else Constraint.le(iv, low))
        if high is not None:
            cons.append(Constraint.le(iv, high) if ascending
                        else Constraint.ge(iv, high))
    if order == "lt":
        # copy 1 is an earlier iteration than copy 2
        cons.append(Constraint.lt(i1, i2) if ascending
                    else Constraint.lt(i2, i1))
    elif order == "ne":
        raise ValueError("test both 'lt' directions instead of 'ne'")
    return cons


def sections_conflict(a: Section, b: Section, loop: LoopStmt,
                      symbolic: ProcSymbolic, order: str = "lt",
                      swap: bool = False) -> bool:
    """Does access-set ``a`` in one iteration overlap ``b`` in a later
    (order='lt') iteration?  With ``swap`` the copies are exchanged so the
    caller can test the opposite direction."""
    if a.is_empty() or b.is_empty():
        return False
    ca, cb = (2, 1) if swap else (1, 2)
    a1 = rename_iteration_copy(a, loop, symbolic, ca)
    b2 = rename_iteration_copy(b, loop, symbolic, cb)
    cons = _iteration_constraints(loop, symbolic, order)
    meetsec = a1.intersect(b2)
    if not cons:
        return not meetsec.is_empty()
    return not meetsec.constrain(*cons).is_empty()


def loop_carried_conflict(summary: VarSummary, loop: LoopStmt,
                          symbolic: ProcSymbolic) -> bool:
    """W(i1) ∩ (R∪W)(i2) ≠ ∅ for some i1 ≠ i2 (either order)."""
    w = summary.may_write
    rw = summary.read.union(summary.may_write)
    return (sections_conflict(w, rw, loop, symbolic, "lt")
            or sections_conflict(w, rw, loop, symbolic, "lt", swap=True))


def flow_into_exposed(summary: VarSummary, loop: LoopStmt,
                      symbolic: ProcSymbolic) -> bool:
    """W(i1) ∩ E(i2) ≠ ∅ for i1 < i2: an upwards-exposed read may receive
    a value produced by an earlier iteration (kills privatization)."""
    return sections_conflict(summary.may_write, summary.exposed, loop,
                             symbolic, "lt")


def anti_dependence(summary: VarSummary, loop: LoopStmt,
                    symbolic: ProcSymbolic) -> bool:
    """R(i1) ∩ W(i2) ≠ ∅ for i1 < i2."""
    return sections_conflict(summary.read, summary.may_write, loop,
                             symbolic, "lt")


def reduction_conflicts_plain(summary: VarSummary, loop: LoopStmt,
                              symbolic: ProcSymbolic) -> bool:
    """Do reduction-updated elements collide across iterations with plain
    reads/writes?  (If so, the reduction transform cannot explain away the
    dependence.)"""
    red = summary.reduction_region()
    plain = summary.read.union(summary.may_write)
    return (sections_conflict(red, plain, loop, symbolic, "lt")
            or sections_conflict(red, plain, loop, symbolic, "lt",
                                 swap=True))
