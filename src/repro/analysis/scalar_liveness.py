"""Classic backward scalar liveness on the CFG.

Part of the "base" analysis suite (scalar mod/ref + symbolic + scalar
liveness) whose cost Fig 5-6 reports separately from the array passes.
Used for scalar privatization sanity checks and dead-store queries in
tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from ..ir.cfg import BasicBlock, Cfg
from ..ir.program import Procedure
from ..ir.symbols import Symbol


class ScalarLiveness:
    """live_in / live_out per basic block for scalar symbols."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.cfg = Cfg(proc)
        self.use: Dict[int, Set[Symbol]] = {}
        self.defs: Dict[int, Set[Symbol]] = {}
        self.live_in: Dict[int, Set[Symbol]] = {}
        self.live_out: Dict[int, Set[Symbol]] = {}
        self._local_sets()
        self._solve()

    def _local_sets(self) -> None:
        for bb in self.cfg.blocks:
            use: Set[Symbol] = set()
            defs: Set[Symbol] = set()
            for item in bb.items:
                for sym in item.uses():
                    if not sym.is_array and sym not in defs:
                        use.add(sym)
                for sym, strong in item.defs():
                    if not sym.is_array and strong:
                        defs.add(sym)
            self.use[bb.block_id] = use
            self.defs[bb.block_id] = defs

    def _solve(self) -> None:
        for bb in self.cfg.blocks:
            self.live_in[bb.block_id] = set()
            self.live_out[bb.block_id] = set()
        changed = True
        while changed:
            changed = False
            for bb in reversed(self.cfg.reverse_post_order()):
                out: Set[Symbol] = set()
                for succ in bb.succs:
                    out |= self.live_in[succ.block_id]
                new_in = self.use[bb.block_id] | (
                    out - self.defs[bb.block_id])
                if out != self.live_out[bb.block_id] or \
                        new_in != self.live_in[bb.block_id]:
                    self.live_out[bb.block_id] = out
                    self.live_in[bb.block_id] = new_in
                    changed = True

    # -- queries -----------------------------------------------------------
    def live_at_entry(self) -> FrozenSet[Symbol]:
        return frozenset(self.live_in[self.cfg.entry.block_id])

    def upwards_exposed(self) -> FrozenSet[Symbol]:
        """Scalars whose procedure-entry value may be read (used by scalar
        privatization: an exposed scalar cannot be blindly privatized)."""
        return self.live_at_entry()
