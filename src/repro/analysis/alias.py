"""Alias information (paper section 3.4).

Two halves, matching the paper's two languages:

* **Fortran** (section 3.4.2): aliases arise from COMMON-block overlap and
  reference parameters.  :func:`fortran_alias_pairs` reports both, using
  the storage-overlap computation of :class:`CommonBlock` and call-site
  formal/actual binding.

* **C** (section 3.4.1): Steensgaard's near-linear flow- and context-
  insensitive points-to analysis, partitioning references into alias
  equivalence classes.  Our mini language has no pointers, so the
  implementation takes abstract assignment constraints (``p = &x``,
  ``p = q``, ``*p = q``, ``p = *q``) — the same kernel Steensgaard's
  algorithm runs on — and produces the equivalence classes the ISSA
  construction would use for C inputs.  It also implements the paper's
  refinement: "we further partition each alias equivalence class so that
  direct reads and writes to individual scalar variables are placed in
  their own subclasses" (strong-update subclasses).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.expressions import ArrayRef, VarRef
from ..ir.program import Program
from ..ir.statements import CallStmt
from ..ir.symbols import Symbol


# ---------------------------------------------------------------------------
# Fortran aliasing
# ---------------------------------------------------------------------------

def fortran_alias_pairs(program: Program) -> List[Tuple[str, str, str]]:
    """All alias pairs in a program: (kind, name_a, name_b) where kind is
    ``"common"`` (storage overlap across views) or ``"param"`` (formal
    bound to a caller variable at some call site)."""
    out: List[Tuple[str, str, str]] = []
    for block in program.commons.values():
        for a, b in block.overlapping_pairs():
            out.append(("common", a.qualified(), b.qualified()))
    for proc in program.procedures.values():
        for call in proc.call_sites():
            callee = program.procedures.get(call.callee)
            if callee is None:
                continue
            for formal, actual in zip(callee.formals, call.args):
                if isinstance(actual, (VarRef, ArrayRef)):
                    out.append(("param", formal.qualified(),
                                actual.symbol.qualified()))
    return out


# ---------------------------------------------------------------------------
# Steensgaard points-to (for C front ends)
# ---------------------------------------------------------------------------

class _Node:
    __slots__ = ("name", "parent", "pointee")

    def __init__(self, name: str):
        self.name = name
        self.parent: "_Node" = self
        self.pointee: Optional["_Node"] = None


class Steensgaard:
    """Unification-based points-to analysis.

    Constraints (one per program assignment):

    * ``address(p, x)``   — ``p = &x``
    * ``copy(p, q)``      — ``p = q``
    * ``store(p, q)``     — ``*p = q``
    * ``load(p, q)``      — ``p = *q``
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, _Node] = {}

    # -- union-find ------------------------------------------------------------
    def _node(self, name: str) -> _Node:
        node = self._nodes.get(name)
        if node is None:
            node = _Node(name)
            self._nodes[name] = node
        return node

    def _find(self, node: _Node) -> _Node:
        while node.parent is not node:
            node.parent = node.parent.parent
            node = node.parent
        return node

    def _union(self, a: _Node, b: _Node) -> _Node:
        ra, rb = self._find(a), self._find(b)
        if ra is rb:
            return ra
        rb.parent = ra
        # unify pointees recursively (the Steensgaard "join")
        pa, pb = ra.pointee, rb.pointee
        if pa is None:
            ra.pointee = pb
        elif pb is not None:
            ra.pointee = self._union(pa, pb)
        return ra

    def _pointee(self, node: _Node) -> _Node:
        root = self._find(node)
        if root.pointee is None:
            fresh = _Node(f"*{root.name}")
            self._nodes[fresh.name] = fresh
            root.pointee = fresh
        return self._find(root.pointee)

    # -- constraints ---------------------------------------------------------
    def address(self, p: str, x: str) -> None:
        self._union(self._pointee(self._node(p)), self._node(x))

    def copy(self, p: str, q: str) -> None:
        self._union(self._pointee(self._node(p)),
                    self._pointee(self._node(q)))

    def store(self, p: str, q: str) -> None:
        # *p = q : pointee(p) may hold whatever q points to
        self._union(self._pointee(self._pointee(self._node(p))),
                    self._pointee(self._node(q)))

    def load(self, p: str, q: str) -> None:
        self._union(self._pointee(self._node(p)),
                    self._pointee(self._pointee(self._node(q))))

    # -- results -----------------------------------------------------------
    def may_alias(self, x: str, y: str) -> bool:
        if x not in self._nodes or y not in self._nodes:
            return False
        return self._find(self._nodes[x]) is self._find(self._nodes[y])

    def equivalence_classes(self) -> List[Set[str]]:
        groups: Dict[int, Set[str]] = {}
        for name, node in self._nodes.items():
            if name.startswith("*"):
                continue
            root = self._find(node)
            groups.setdefault(id(root), set()).add(name)
        return [g for g in groups.values()]

    def alias_classes_with_subclasses(
            self, direct_scalars: Iterable[str]
    ) -> List[Tuple[Set[str], Set[str]]]:
        """Each class split into (direct-scalar subclasses, alias subclass)
        per section 3.4.1's strong-update refinement."""
        directs = set(direct_scalars)
        out = []
        for cls in self.equivalence_classes():
            strong = cls & directs
            weak = cls - directs
            out.append((strong, weak))
        return out
