"""Incremental per-procedure analysis over the content-addressed store.

The paper's Explorer is *interactive*: the programmer edits one procedure
and expects sub-second re-analysis.  Whole-job caching (PR 2) cannot give
that — any source edit changes the job key and the entire
parse→IR→summaries→liveness pipeline re-runs.  This module splits the
content address to per-procedure granularity:

* **IR facts** are keyed by ``sha256(procedure source segment)`` alone —
  pure functions of one procedure's text.
* **Plan rows** (parallelization verdicts per loop: liveness-driven
  privatization, reduction recognition, dependence blockers) are keyed by
  the procedure's *dependency cone* in the call graph: the source hashes
  of every procedure whose text can influence the result, plus the
  layout signatures of every COMMON block visible from the cone.
* **Slices** are keyed by the *down*-cone only (a demand slice from a
  use point never crosses upward past an exposed formal — formals are
  terminals, resolved only downward at call sites).

The cone of ``p`` is ``down(p) ∪ after(p)``: ``down`` is the transitive
callees (the bottom-up summary inputs), ``after`` the continuation
closure — every procedure that may execute after some call to ``p``
returns, because the top-down liveness phase (chapter 5) flows
*backwards* from program end into ``p``.  Editing a procedure therefore
invalidates exactly the cones it belongs to; everything else is a cache
hit, announced via ``incr.reuse`` events while recomputation is wrapped
in ``incr.cone`` spans (the cache-invalidation matrix test counts both).

Cones are evaluated bottom-up over call-graph SCCs (singletons here —
the IR rejects recursion — but the order generalizes), and independent
cones can be fanned out onto a process pool (``workers=``): Chatterjee
et al.'s on-demand data-flow results ground both halves, and determinism
is preserved because every cached artifact is a pure function of its key
— a warm re-analysis is bit-identical to a cold one
(``tests/test_incremental.py`` proves this corpus-wide).

Cached plan rows are keyed by loop *ordinal* within the procedure, never
by loop name: unlabeled loop names embed absolute line numbers
(``proc/L42``), which shift when an *earlier* procedure is edited — the
rows themselves are line-free and the names are reattached from the
freshly built program on every hit.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.callgraph import CallGraph
from ..ir.program import Program
from ..ir.statements import Block, CallStmt, LoopStmt, Statement
from .liveness import FULL

__all__ = [
    "PROC_SCHEMA_VERSION", "ConeIndex", "IncrementalAnalyzer",
    "IncrementalKeys", "common_signatures", "proc_cache_stats",
    "proc_source_segments", "reset_proc_cache_stats", "set_proc_store",
    "get_proc_store", "store_plan_rows",
]

#: Bumped whenever the per-procedure payload layout or key recipe
#: changes — stale ``proc/`` entries then miss instead of being misread.
#: Independent of the whole-job ``artifacts.SCHEMA_VERSION``.
PROC_SCHEMA_VERSION = 1

#: Option keys that influence static-analysis results (everything else —
#: engine, machine, inputs, max_ops — is execution-side and must NOT
#: fragment the per-procedure cache).
ANALYSIS_OPTION_KEYS = ("use_liveness", "liveness_variant",
                       "use_reductions")

_lock = threading.Lock()
_proc_store = None
_counters = {"hit": 0, "miss": 0}


def set_proc_store(store) -> None:
    """Install the shared persistent per-procedure cache (an
    :class:`~repro.service.artifacts.ArtifactStore`, conventionally
    rooted at ``<store root>/proc``).  Pass ``None`` to disable."""
    global _proc_store
    with _lock:
        _proc_store = store


def get_proc_store():
    with _lock:
        return _proc_store


def proc_cache_stats() -> Dict[str, int]:
    """Monotonic counters: ``hit`` (cone result reused) and ``miss``
    (cone recomputed) — mirrored into the service metrics as
    ``proc_cache_hit`` / ``proc_cache_miss``."""
    with _lock:
        return dict(_counters)


def reset_proc_cache_stats() -> None:
    with _lock:
        _counters["hit"] = 0
        _counters["miss"] = 0


def _count(what: str) -> None:
    with _lock:
        _counters[what] += 1


# -- content hashing ----------------------------------------------------------

def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def proc_source_segments(source: str, program: Program) -> Dict[str, str]:
    """Split the source text into one segment per procedure unit.

    Segment boundaries are the unit header lines recorded by the parser
    (``proc.source_lines.start``); each segment runs to the line before
    the next unit (the last to EOF), so comments and blank lines between
    units attach to the preceding procedure.  Editing any line of a
    segment — including a comment — changes that procedure's hash and
    nothing else's."""
    lines = source.splitlines()
    procs = sorted(program.procedures.values(),
                   key=lambda p: p.source_lines.start)
    segments: Dict[str, str] = {}
    for i, proc in enumerate(procs):
        start = 1 if i == 0 else proc.source_lines.start
        end = (procs[i + 1].source_lines.start - 1
               if i + 1 < len(procs) else len(lines))
        segments[proc.name] = "\n".join(lines[start - 1:end])
    return segments


def common_signatures(program: Program) -> Dict[str, str]:
    """Per-COMMON-block layout signature: total size plus every
    procedure's declared view (member name/offset/size).  Program-wide,
    not per-cone-member, because the parallelizer's member-group
    refinement unions *all* views of a block."""
    from ..service.artifacts import canonical_json
    out: Dict[str, str] = {}
    for name, block in program.commons.items():
        views = []
        for proc_name in sorted(block.views):
            view = block.views[proc_name]
            views.append([proc_name,
                          [[s.name, s.common_offset, s.constant_size() or 0]
                           for s in view.symbols]])
        out[name] = _sha(canonical_json({"size": block.size,
                                         "views": views}))
    return out


# -- dependency cones ---------------------------------------------------------

class ConeIndex:
    """Call-graph dependency cones, memoized per procedure.

    ``down(p)`` — p plus its transitive callees: everything the
    bottom-up summary of p reads.  ``after(p)`` — the continuation
    closure: for each site calling p, the caller plus the down-cones of
    every call that may execute after the site returns (block suffixes
    through enclosing IFs; *all* calls of an enclosing loop body, since
    the next iteration re-runs them), plus, recursively, whatever runs
    after the caller itself.  The top-down liveness phase reads exactly
    this set, so ``cone(p) = down(p) ∪ after(p)`` bounds every input of
    p's plan rows."""

    def __init__(self, program: Program,
                 callgraph: Optional[CallGraph] = None):
        self.program = program
        self.callgraph = callgraph or CallGraph(program)
        self._down: Dict[str, Tuple[str, ...]] = {}
        self._after: Dict[str, FrozenSet[str]] = {}

    def down(self, name: str) -> Tuple[str, ...]:
        got = self._down.get(name)
        if got is None:
            seen: Set[str] = set()

            def visit(n: str) -> None:
                if n in seen:
                    return
                seen.add(n)
                for c in sorted(self.callgraph.callees.get(n, ())):
                    visit(c)

            visit(name)
            got = tuple(sorted(seen))
            self._down[name] = got
        return got

    def after(self, name: str) -> FrozenSet[str]:
        got = self._after.get(name)
        if got is not None:
            return got
        out: Set[str] = set()
        for call in self.callgraph.sites_calling(name):
            caller = call.proc_name
            out.add(caller)
            for q in self._continuation_callees(call):
                out.update(self.down(q))
            out.update(self.after(caller))
        got = frozenset(out)
        self._after[name] = got
        return got

    def cone(self, name: str) -> Tuple[str, ...]:
        return tuple(sorted(set(self.down(name)) | self.after(name)))

    def scc_bottom_up(self) -> List[Tuple[str, ...]]:
        """Call-graph SCCs in bottom-up (callees-first) evaluation order.

        The IR rejects recursion, so every component is a singleton, but
        the incremental driver iterates components so the order stays
        correct if cycles are ever admitted.  Tarjan emits SCCs in
        reverse topological order of the condensation — exactly
        bottom-up for a callee edge relation."""
        callees = self.callgraph.callees
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        out: List[Tuple[str, ...]] = []

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(callees.get(v, ())):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                out.append(tuple(sorted(comp)))

        for name in self.program.procedures:
            if name not in index:
                strongconnect(name)
        return out

    # -- continuation geometry ---------------------------------------------
    def _continuation_callees(self, call: CallStmt) -> Set[str]:
        """Callees of every statement that may execute *after* ``call``
        within its own procedure: the suffix of each enclosing block
        (composed through IF arms), and the whole body of any enclosing
        loop — its next iteration re-runs statements lexically before
        the call site."""
        trailing: List[Statement] = []
        proc = self.program.procedures[call.proc_name]
        self._collect_after(proc.body, call, trailing)
        out: Set[str] = set()
        for stmt in trailing:
            for sub in stmt.walk():
                if isinstance(sub, CallStmt):
                    out.add(sub.callee)
        return out

    def _collect_after(self, block: Block, target: Statement,
                       out: List[Statement]) -> bool:
        for i, stmt in enumerate(block.statements):
            if stmt is target or _contains(stmt, target):
                if stmt is not target:
                    if isinstance(stmt, LoopStmt):
                        # loop re-entry: every statement of the body may
                        # run again after the call returns
                        out.extend(stmt.body.statements)
                    else:
                        for child in stmt.children_blocks():
                            if self._collect_after(child, target, out):
                                break
                out.extend(block.statements[i + 1:])
                return True
        return False


def _contains(stmt: Statement, target: Statement) -> bool:
    return any(s is target for s in stmt.walk())


# -- cache keys ---------------------------------------------------------------

class IncrementalKeys:
    """Derives every ``proc/`` cache key for one (program, source,
    options) triple.  Keys are content addresses: schema version, kind,
    the procedure's cone source hashes, the COMMON signatures visible
    from the cone, and the analysis-semantic options."""

    def __init__(self, program: Program, source: str,
                 options: Optional[Dict] = None):
        self.program = program
        self.source = source
        self.hashes = {name: _sha(seg) for name, seg
                       in proc_source_segments(source, program).items()}
        self.commons = common_signatures(program)
        self.cones = ConeIndex(program)
        opts = options or {}
        self.options = {
            "use_liveness": bool(opts.get("use_liveness", True)),
            "liveness_variant": str(opts.get("liveness_variant", FULL)),
            "use_reductions": bool(opts.get("use_reductions", True)),
        }

    def _key(self, payload: Dict) -> str:
        from ..service.artifacts import canonical_json
        payload = dict(payload)
        payload["schema"] = PROC_SCHEMA_VERSION
        return _sha(canonical_json(payload))

    def _commons_for(self, procs: Iterable[str]) -> Dict[str, str]:
        blocks: Set[str] = set()
        for name in procs:
            blocks.update(self.program.procedures[name].common_blocks)
        return {b: self.commons[b] for b in sorted(blocks)
                if b in self.commons}

    def ir_key(self, name: str) -> str:
        """Keyed by the procedure's own source hash alone."""
        return self._key({"kind": "ir", "proc": name,
                          "source": self.hashes[name]})

    def plan_key(self, name: str) -> str:
        """Keyed by the full dependency cone plus COMMON signatures."""
        cone = self.cones.cone(name)
        return self._key({
            "kind": "plan", "proc": name,
            "cone": {q: self.hashes[q] for q in cone},
            "commons": self._commons_for(cone),
            "options": self.options,
        })

    def slice_key(self, name: str, ordinal: int,
                  var: Optional[str]) -> str:
        """Keyed by the *down*-cone only: a no-context slice from a use
        inside ``name`` never crosses upward past an exposed formal."""
        down = self.cones.down(name)
        return self._key({
            "kind": "slice", "proc": name, "loop": ordinal,
            "var": var or "",
            "cone": {q: self.hashes[q] for q in down},
            "commons": self._commons_for(down),
            "options": self.options,
        })

    def summary_key(self, name: str) -> str:
        """Keyed by the *down*-cone: a ⟨R,E,W,M⟩ access summary composes
        only callee summaries (bottom-up phase), never continuations.
        Deliberately option-free — the dataflow always computes the same
        summary; options only change what the planner does with it."""
        down = self.cones.down(name)
        return self._key({
            "kind": "summary", "proc": name,
            "cone": {q: self.hashes[q] for q in down},
            "commons": self._commons_for(down),
        })

    def summary_hash_key(self, name: str) -> str:
        """A tiny side entry mapping the same down-cone address to the
        canonical summary *content hash*, so value-level plan probes
        never deserialize whole summaries."""
        down = self.cones.down(name)
        return self._key({
            "kind": "summary.hash", "proc": name,
            "cone": {q: self.hashes[q] for q in down},
            "commons": self._commons_for(down),
        })

    def after_key(self, name: str) -> str:
        """Key for the cached after-proc summary (S_{r0,proc}: accesses
        from any return of ``name`` to program end, in ``name``'s
        coordinates).  Its value is a function of the continuation
        closure's *bodies* (callers' call sites and suffixes, plus their
        transitive context), the COMMON layout, and — because
        ``_map_to_callee`` rebases into callee coordinates — the callee's
        declared interface, but *not* the callee's executable body."""
        proc = self.program.procedures[name]
        after = self.cones.after(name)
        return self._key({
            "kind": "after", "proc": name,
            "interface": _interface_signature(proc),
            "after": {q: self.hashes[q] for q in sorted(after)},
            "commons": self._commons_for(set(after) | {name}),
        })


# -- plan-row (de)hydration -----------------------------------------------------

def _plan_row(lp) -> Dict:
    """One loop's verdicts as plain JSON — the exact shape of the
    ``plan`` section of :func:`repro.service.jobs.session_snapshot`, and
    deliberately free of loop names and line numbers (both shift under
    edits to earlier procedures)."""
    return {
        "parallel": lp.parallel,
        "contains_io": lp.contains_io,
        "blockers": sorted(lp.blockers),
        "vars": {vp.display_name: {"status": vp.status,
                                   "reason": vp.reason or ""}
                 for vp in lp.vars.values()},
    }


def _proc_facts(proc) -> Dict:
    """Per-procedure IR facts — functions of the procedure text only
    (``lines`` is a length, not an absolute position)."""
    return {
        "kind": proc.kind,
        "lines": proc.line_count(),
        "loops": len(proc.loops()),
        "formals": [f.name for f in proc.formals],
        "calls": sorted({c.callee for c in proc.call_sites()}),
        "commons": sorted(proc.common_blocks),
    }


# -- summary (de)hydration -----------------------------------------------------
#
# ⟨R,E,W,M⟩ summaries serialize cleanly: LocKeys are tuples of plain
# strings, sections are nested tuples of affine constraints over string
# terms, and coefficients are Fractions.  The one impurity is opaque
# symbolic tags: ``TagRegistry.fresh`` draws names from a process-global
# counter, so raw ``tg:N`` names are session-dependent and could alias a
# *different* fresh ``tg:N`` when a cached summary is loaded later.  The
# serializer therefore renames every tag to a canonical per-summary name
# (``tg:s:<proc>:<ordinal>``, first-appearance order) — still a tag to
# ``TagRegistry.is_tag``, never emitted by ``fresh``, and stable across
# sessions.  Loaded tags need no registry entry: a flat summary is only
# ever consumed at a call site, where ``_TermSubstitution`` rebinds every
# unresolved term to a fresh caller tag anyway (exactly what happens to
# freshly-walked callee summaries, so decisions are unchanged).

def _summary_tag_map(summary, proc_name: str) -> Dict[str, str]:
    ren: Dict[str, str] = {}

    def see_section(sec) -> None:
        for system in sec.systems:
            for c in system.constraints:
                for term in c.expr.coeffs:      # insertion order
                    if term.startswith("tg:") and term not in ren:
                        ren[term] = f"tg:s:{proc_name}:{len(ren)}"

    for key in sorted(summary.vars):
        vs = summary.vars[key]
        for sec in (vs.read, vs.exposed, vs.may_write, vs.must_write):
            see_section(sec)
        for op in sorted(vs.reductions):
            see_section(vs.reductions[op])
    return ren


def _section_to_json(sec, ren: Dict[str, str]) -> List:
    out = []
    for system in sec.systems:
        rows = []
        for c in system.constraints:
            coeffs = sorted([ren.get(v, v), str(f)]
                            for v, f in c.expr.coeffs.items())
            rows.append([coeffs, str(c.expr.const),
                         1 if c.is_equality else 0])
        out.append(rows)
    return out


def _section_from_json(data: List):
    from fractions import Fraction
    from ..poly import Constraint, LinExpr, Section, System
    systems = []
    for rows in data:
        constraints = [
            Constraint(LinExpr({v: Fraction(f) for v, f in coeffs},
                               Fraction(const)), bool(eq))
            for coeffs, const, eq in rows]
        systems.append(System(constraints))
    return Section(systems)


def summary_to_json(summary, proc_name: str) -> List:
    """An :class:`AccessSummary` as canonical, session-independent JSON."""
    ren = _summary_tag_map(summary, proc_name)
    out = []
    for key in sorted(summary.vars):
        vs = summary.vars[key]
        out.append([list(key), {
            "r": _section_to_json(vs.read, ren),
            "e": _section_to_json(vs.exposed, ren),
            "w": _section_to_json(vs.may_write, ren),
            "m": _section_to_json(vs.must_write, ren),
            "red": [[op, _section_to_json(vs.reductions[op], ren)]
                    for op in sorted(vs.reductions)],
            "n": sorted(vs.names),
        }])
    return out


def _interface_signature(proc) -> str:
    """Hash of a procedure's declared interface: formal names, types, and
    dimension expressions, plus its COMMON member views.  Everything
    :meth:`ArrayLiveness._map_to_callee` reads on the callee side."""
    def dims(sym):
        return [[repr(d.low), repr(d.high)] for d in sym.dims]
    payload = {
        "formals": [[f.name, f.type, dims(f)] for f in proc.formals],
        "commons": sorted([s.name, s.common_block, s.common_offset,
                           s.type, dims(s)]
                          for s in proc.symbols if s.is_common),
    }
    return _sha(_canonical(payload))


def _canonical(payload) -> str:
    from ..service.artifacts import canonical_json
    return canonical_json(payload)


def _plan_value_payload(keys: "IncrementalKeys", name: str,
                        value_hash) -> Dict:
    """The second-level plan key's payload (see
    :meth:`IncrementalAnalyzer.plan_value_key`); ``value_hash(proc)``
    supplies the canonical summary content hash of a callee."""
    down = keys.cones.down(name)
    after = keys.cones.after(name)
    return {
        "kind": "plan.v", "proc": name,
        "source": keys.hashes[name],
        "deps": {q: value_hash(q) for q in down if q != name},
        "after": {q: keys.hashes[q] for q in sorted(after)},
        "commons": keys._commons_for(keys.cones.cone(name)),
        "options": keys.options,
    }


def summary_from_json(data: List):
    from .summaries import AccessSummary, VarSummary
    vars_: Dict[Tuple, object] = {}
    for key_list, d in data:
        vars_[tuple(key_list)] = VarSummary(
            read=_section_from_json(d["r"]),
            exposed=_section_from_json(d["e"]),
            may_write=_section_from_json(d["w"]),
            must_write=_section_from_json(d["m"]),
            reductions={op: _section_from_json(sec)
                        for op, sec in d["red"]},
            names=set(d["n"]))
    return AccessSummary(vars_)


def attach_summary_cache(parallelizer, source: str, *,
                         options: Optional[Dict] = None,
                         store=None) -> Optional["IncrementalAnalyzer"]:
    """Attach the shared ``proc/`` summary + after-context caches to a
    *lazy* parallelizer owned by someone else (e.g. a full
    execution/profiling job's :class:`ExplorerSession`), so cross-*job*
    analysis reuse is not limited to ``analysis_only`` requests.

    Returns the backing analyzer, or None when there is nothing to
    attach to: no proc store registered, an eager parallelizer (its
    walks already ran in ``__init__``), or hooks already in place."""
    if store is None:
        store = get_proc_store()
    if store is None or not getattr(parallelizer, "lazy", False):
        return None
    if parallelizer.dataflow.summary_loader is not None:
        return None
    analyzer = IncrementalAnalyzer(parallelizer.program, source,
                                   options=options, store=store)
    analyzer._parallelizer = parallelizer
    analyzer.attach(parallelizer)
    return analyzer


# -- fan-out worker (top-level: must be picklable under spawn) ---------------

def _compute_proc_rows(source: str, program_name: str, options: Dict,
                       names: List[str], root: str) -> Dict[str, List]:
    """Child-process entry point: recompute the plan rows of ``names``
    (one independent cone group, bottom-up order) and write them through
    the shared disk store at ``root``."""
    from ..ir import build_program
    from ..service.artifacts import ArtifactStore
    program = build_program(source, program_name)
    analyzer = IncrementalAnalyzer(program, source, options=options,
                                   store=ArtifactStore(root))
    return {name: analyzer._compute_and_store(name) for name in names}


# -- the analyzer -------------------------------------------------------------

class IncrementalAnalyzer:
    """Demand-driven static analysis with per-procedure cone caching.

    Drives a *lazy* :class:`~repro.parallelize.parallelizer.Parallelizer`
    so a cache miss on one procedure pulls in exactly that procedure's
    cone, and answers plan and slice queries from the ``proc/`` store
    whenever the cone is unchanged."""

    def __init__(self, program: Program, source: str, *,
                 options: Optional[Dict] = None, store=None):
        self.program = program
        self.source = source
        self.options = dict(options or {})
        if store is None:
            store = get_proc_store()
        if store is None:
            # private, memory-only fallback: demand-driven but not
            # persistent (no store registered)
            from ..service.artifacts import ArtifactStore
            store = ArtifactStore(None)
        self.store = store
        self.keys = IncrementalKeys(program, source, self.options)
        self._parallelizer = None
        self._proc_plans: Dict[str, Dict] = {}
        self._slicer = None
        self._summary_hashes: Dict[str, str] = {}
        self._value_keys: Dict[str, str] = {}

    # -- lazy analysis plumbing ---------------------------------------------
    def attach(self, parallelizer) -> None:
        """Wire this analyzer's ``proc/`` caches into a *lazy*
        parallelizer's hooks (loaders must be in place before anything
        forces a walk — eager construction walks in ``__init__``)."""
        # summary cache: procedures that only participate as callees
        # load flat ⟨R,E,W,M⟩ summaries instead of re-walking their
        # bodies — the dominant cost of a warm-edit re-analysis
        parallelizer.dataflow.summary_loader = self._load_summary
        parallelizer.dataflow.summary_saver = self._save_summary
        # after-proc cache: liveness context without re-walking the
        # caller chain (only meaningful for the FULL variant)
        full = parallelizer._full_liveness_analysis
        full.after_loader = self._load_after
        full.after_saver = self._save_after

    def _lazy_parallelizer(self):
        if self._parallelizer is None:
            from ..parallelize.parallelizer import Parallelizer
            o = self.keys.options
            self._parallelizer = Parallelizer(
                self.program,
                use_reductions=o["use_reductions"],
                use_liveness=o["use_liveness"],
                liveness_variant=o["liveness_variant"],
                lazy=True)
            self.attach(self._parallelizer)
        return self._parallelizer

    def _load_summary(self, name: str):
        from ..obs import get_tracer
        cached = self.store.get(self.keys.summary_key(name))
        if cached is None:
            _count("miss")
            return None
        _count("hit")
        get_tracer().event("incr.reuse", proc=name, kind="summary")
        return summary_from_json(cached["summary"])

    def _save_summary(self, name: str, summary) -> None:
        key = self.keys.summary_key(name)
        if key not in self.store:
            data = summary_to_json(summary, name)
            self.store.put(key, {"summary": data})
            h = _sha(_canonical(data))
            self.store.put(self.keys.summary_hash_key(name), {"hash": h})
            self._summary_hashes[name] = h

    def _load_after(self, name: str):
        from ..obs import get_tracer
        cached = self.store.get(self.keys.after_key(name))
        if cached is None:
            _count("miss")
            return None
        _count("hit")
        get_tracer().event("incr.reuse", proc=name, kind="after")
        return summary_from_json(cached["after"])

    def _save_after(self, name: str, summary) -> None:
        key = self.keys.after_key(name)
        if key not in self.store:
            self.store.put(key, {"after": summary_to_json(summary, name)})

    # -- value-level plan keys ------------------------------------------------
    def _summary_value_hash(self, name: str) -> str:
        """Content hash of a procedure's canonical ⟨R,E,W,M⟩ summary.
        Served from the tiny ``summary.hash`` side entry when the
        down-cone is unchanged; otherwise the summary itself is loaded
        or walked and the side entry refilled."""
        got = self._summary_hashes.get(name)
        if got is None:
            hkey = self.keys.summary_hash_key(name)
            cached = self.store.get(hkey)
            if cached is not None:
                got = cached["hash"]
            else:
                summary = self._lazy_parallelizer().dataflow.summary_of(name)
                got = _sha(_canonical(summary_to_json(summary, name)))
                if hkey not in self.store:
                    self.store.put(hkey, {"hash": got})
            self._summary_hashes[name] = got
        return got

    def plan_value_key(self, name: str) -> str:
        """Second-level plan key: a *semantic* firewall.  The source-cone
        key (:meth:`IncrementalKeys.plan_key`) is conservative — any byte
        change in the cone misses.  But plan rows are a function of the
        procedure's own body, the summary *values* of its callees, the
        bodies of its continuation closure (the liveness context), and
        the COMMON layout — so an edit that leaves every callee summary
        bit-identical (a comment, a reordered declaration, a change to
        dead code) re-anchors the cached rows instead of re-planning.
        Probing this key forces the down-cone's summaries, which is far
        cheaper than the dependence tests planning would re-run."""
        got = self._value_keys.get(name)
        if got is None:
            got = self.keys._key(_plan_value_payload(
                self.keys, name, self._summary_value_hash))
            self._value_keys[name] = got
        return got

    def _loop_plans(self, name: str) -> Dict:
        """stmt_id -> LoopPlan for one procedure (memoized)."""
        got = self._proc_plans.get(name)
        if got is None:
            plan = self._lazy_parallelizer().plan_for([name])
            got = dict(plan.loops)
            self._proc_plans[name] = got
        return got

    # -- plan rows -----------------------------------------------------------
    def plan_rows(self, workers: int = 0) -> Dict[str, List]:
        """Per-procedure plan rows (loop-ordinal order), served from the
        cone cache; misses are recomputed bottom-up over call-graph
        SCCs, optionally fanning independent cone groups out onto
        ``workers`` processes."""
        from ..obs import get_tracer
        tracer = get_tracer()
        order = [n for comp in self.keys.cones.scc_bottom_up()
                 for n in comp]
        rows: Dict[str, List] = {}
        missed: List[str] = []
        for name in order:
            key = self.keys.plan_key(name)
            cached = self.store.get(key)
            if cached is not None:
                _count("hit")
                tracer.event("incr.reuse", proc=name, kind="plan",
                             level="source")
                rows[name] = cached["rows"]
                continue
            # source-cone miss: probe the semantic (value-keyed) level
            # before paying for re-planning
            cached = self.store.get(self.plan_value_key(name))
            if cached is not None:
                _count("hit")
                tracer.event("incr.reuse", proc=name, kind="plan",
                             level="value")
                rows[name] = cached["rows"]
                # re-anchor under the new source-cone key so the next
                # run hits at the first level
                self.store.put(key, {"rows": cached["rows"]})
                continue
            _count("miss")
            missed.append(name)
        if len(missed) > 1 and workers and workers > 1 \
                and self.store.root is not None:
            rows.update(self._fan_out(missed, workers))
        else:
            for name in missed:
                rows[name] = self._compute_and_store(name)
        return rows

    def _compute_and_store(self, name: str) -> List:
        from ..obs import get_tracer
        cone = self.keys.cones.cone(name)
        with get_tracer().span("incr.cone", proc=name, kind="plan") as sp:
            plans = self._loop_plans(name)
            proc = self.program.procedures[name]
            rows = [_plan_row(plans[loop.stmt_id])
                    for loop in proc.loops()]
            sp.tag(cone=len(cone), loops=len(rows))
        self.store.put(self.keys.plan_key(name), {"rows": rows})
        self.store.put(self.plan_value_key(name), {"rows": rows})
        return rows

    def _fan_out(self, missed: List[str], workers: int) -> Dict[str, List]:
        """Recompute missed cones on a spawn pool, one independent
        (down-cone-disjoint) group per task; falls back to sequential
        when everything collapses into one group."""
        groups = self._independent_groups(missed)
        if len(groups) <= 1:
            return {name: self._compute_and_store(name) for name in missed}
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor
        n = min(workers, len(groups))
        buckets: List[List[str]] = [[] for _ in range(n)]
        for i, group in enumerate(groups):
            buckets[i % n].extend(group)
        out: Dict[str, List] = {}
        with ProcessPoolExecutor(
                max_workers=n, mp_context=mp.get_context("spawn")) as pool:
            futures = [pool.submit(_compute_proc_rows, self.source,
                                   self.program.name, self.options,
                                   bucket, str(self.store.root))
                       for bucket in buckets if bucket]
            for future in futures:
                out.update(future.result())
        from ..obs import get_tracer
        tracer = get_tracer()
        for name in missed:
            # children trace into the void; reattach one span per cone
            # so warm-vs-cold accounting stays span-count exact
            with tracer.span("incr.cone", proc=name, kind="plan",
                             pooled=True) as sp:
                sp.tag(cone=len(self.keys.cones.cone(name)))
            # refresh the parent's memory LRU from the shared disk tree
            self.store.get(self.keys.plan_key(name))
        return out

    def _independent_groups(self, names: List[str]) -> List[List[str]]:
        """Union-find over down-cone overlap: procedures whose cones
        share a member recompute shared summaries, so they stay in one
        group (one process); disjoint groups fan out."""
        parent = {n: n for n in names}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        owner: Dict[str, str] = {}
        for n in names:
            for q in self.keys.cones.down(n):
                if q in owner:
                    union(n, owner[q])
                else:
                    owner[q] = n
        groups: Dict[str, List[str]] = {}
        for n in names:          # preserves bottom-up order within groups
            groups.setdefault(find(n), []).append(n)
        return list(groups.values())

    # -- IR facts ------------------------------------------------------------
    def proc_facts(self, name: str) -> Dict:
        from ..obs import get_tracer
        key = self.keys.ir_key(name)
        cached = self.store.get(key)
        if cached is not None:
            _count("hit")
            get_tracer().event("incr.reuse", proc=name, kind="ir")
            return cached
        _count("miss")
        facts = _proc_facts(self.program.procedures[name])
        self.store.put(key, facts)
        return facts

    # -- demand slices ---------------------------------------------------------
    def slice_counts(self, query: str) -> Dict[str, Dict]:
        """Demand-driven slice sizes for one query point — a loop name,
        optionally narrowed to one variable as ``"loop@var"``.  Cached
        per (down-cone, loop ordinal, var): slice line *counts* are
        shift-invariant, so edits outside the down-cone reuse the entry."""
        from ..obs import get_tracer
        tracer = get_tracer()
        name, sep, var = query.partition("@")
        var = var if sep else None
        try:
            loop = self.program.loop(name)
        except KeyError:
            raise ValueError(
                f"unknown loop {name!r}; choose from "
                f"{self.program.loop_names()}") from None
        proc = loop.proc_name
        ordinal = [l.stmt_id for l
                   in self.program.procedures[proc].loops()
                   ].index(loop.stmt_id)
        key = self.keys.slice_key(proc, ordinal, var)
        cached = self.store.get(key)
        if cached is not None:
            _count("hit")
            tracer.event("incr.reuse", proc=proc, kind="slice")
            return cached["vars"]
        _count("miss")
        with tracer.span("incr.cone", proc=proc, kind="slice",
                         query=query) as sp:
            from ..explorer.session import dependence_slices
            if self._slicer is None:
                from ..slicing.slicer import Slicer
                self._slicer = Slicer(self.program)
            loop_plan = self._loop_plans(proc)[loop.stmt_id]
            per_var = {}
            for ds in dependence_slices(self.program, self._slicer, loop,
                                        loop_plan, var=var):
                per_var[ds.var.display_name] = {
                    "program": ds.program_slice.line_count(),
                    "control": ds.control_slice.line_count(),
                    "program_cr": ds.program_slice_cr.line_count(),
                    "control_cr": ds.control_slice_cr.line_count(),
                    "program_ar": ds.program_slice_ar.line_count(),
                    "control_ar": ds.control_slice_ar.line_count(),
                }
            sp.tag(vars=len(per_var), down=len(self.keys.cones.down(proc)))
        self.store.put(key, {"vars": per_var})
        return per_var

    # -- the analysis-only artifact ---------------------------------------------
    def analysis_artifact(self, slice_names: Sequence[str] = (),
                          workers: int = 0) -> Dict:
        """The static analysis artifact: program facts, the full plan
        (cached rows reattached to fresh loop names), per-procedure IR
        facts, cone keys, and any requested demand slices.  Bit-identical
        whether served cold (everything recomputed) or warm (everything
        reused) — provenance lives in spans and metrics, never in the
        payload."""
        from ..obs import get_tracer
        program = self.program
        with get_tracer().span("analyze", program=program.name) as sp:
            rows_by_proc = self.plan_rows(workers=workers)
            plan: Dict[str, Dict] = {}
            for proc in program.procedures.values():
                for loop, row in zip(proc.loops(),
                                     rows_by_proc[proc.name]):
                    plan[loop.name] = row
            procs = {name: self.proc_facts(name)
                     for name in program.procedures}
            slices = {q: self.slice_counts(q) for q in slice_names}
            sp.tag(procedures=len(procs), loops=len(plan))
        return {
            "program": {"name": program.name,
                        "lines": program.total_lines(),
                        "loops": len(program.all_loops()),
                        "procedures": sorted(program.procedures)},
            "plan": plan,
            "procs": procs,
            "cones": {name: self.keys.plan_key(name)
                      for name in sorted(program.procedures)},
            "slices": slices,
        }


def store_plan_rows(program: Program, source: str, options: Optional[Dict],
                    plan, dataflow=None, after_summaries=None) -> int:
    """Write-through from a *full* pipeline run: warm the per-procedure
    cache with the plan's rows so a later ``analysis_only`` job (or an
    edit to an unrelated procedure) starts hot.  When the run's walked
    ``dataflow`` is supplied, its ⟨R,E,W,M⟩ summaries, their content
    hashes, and the value-level plan keys are written through as well;
    ``after_summaries`` (``proc -> AccessSummary``, from the FULL
    liveness pass) warms the after-proc cache.  No-op without a
    registered store; returns the number of procedures stored."""
    store = get_proc_store()
    if store is None:
        return 0
    keys = IncrementalKeys(program, source, options)
    summaries = dict(dataflow.proc_summary) if dataflow is not None else {}
    hashes: Dict[str, str] = {}

    def value_hash(q: str) -> str:
        got = hashes.get(q)
        if got is None:
            got = _sha(_canonical(summary_to_json(summaries[q], q)))
            hashes[q] = got
        return got

    stored = 0
    for proc in program.procedures.values():
        key = keys.plan_key(proc.name)
        if key in store:
            continue
        rows = []
        for loop in proc.loops():
            lp = plan.loops.get(loop.stmt_id)
            if lp is None:
                return stored      # partial plan: don't cache half-truths
            rows.append(_plan_row(lp))
        store.put(key, {"rows": rows})
        if proc.name in summaries:
            skey = keys.summary_key(proc.name)
            if skey not in store:
                data = summary_to_json(summaries[proc.name], proc.name)
                store.put(skey, {"summary": data})
                store.put(keys.summary_hash_key(proc.name),
                          {"hash": _sha(_canonical(data))})
            if all(q in summaries for q in keys.cones.down(proc.name)):
                store.put(keys._key(_plan_value_payload(
                    keys, proc.name, value_hash)), {"rows": rows})
        if after_summaries and proc.name in after_summaries:
            akey = keys.after_key(proc.name)
            if akey not in store:
                store.put(akey, {"after": summary_to_json(
                    after_summaries[proc.name], proc.name)})
        stored += 1
    return stored
