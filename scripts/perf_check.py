#!/usr/bin/env python
"""Performance regression gate for the execution engines.

Re-runs ``benchmarks/bench_perf_engine.py`` and compares fresh ops/sec
numbers against the committed baseline ``BENCH_engine.json``.  Fails
(exit 1) when either engine regresses by more than ``--tolerance``
(default 20%) on any workload, or when the compiled engine drops below
the 2x-over-tree contract.

Run it next to the tier-1 suite::

    PYTHONPATH=src python scripts/perf_check.py

The baseline is host-dependent (wall-clock ops/sec), so regenerate it
when moving to new hardware::

    PYTHONPATH=src python scripts/perf_check.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_perf_engine import (BASELINE_PATH, MIN_SPEEDUP,  # noqa: E402
                               run_bench)


def compare(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages for every >tolerance ops/sec drop."""
    failures = []
    for name, base in baseline["workloads"].items():
        cur = fresh["workloads"].get(name)
        if cur is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        for engine in ("tree", "compiled"):
            was = base[engine]["ops_per_sec"]
            now = cur[engine]["ops_per_sec"]
            if now < was * (1.0 - tolerance):
                failures.append(
                    f"{name}/{engine}: {now / 1e6:.2f}M ops/s is "
                    f"{(1 - now / was):.0%} below baseline "
                    f"{was / 1e6:.2f}M ops/s (tolerance {tolerance:.0%})")
        if cur["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"{name}: compiled/tree speedup {cur['speedup']:.2f}x "
                f"below the {MIN_SPEEDUP}x contract")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional ops/sec drop (default 0.20)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite BENCH_engine.json from this run")
    args = ap.parse_args(argv)

    fresh = run_bench()
    for name, r in fresh["workloads"].items():
        print(f"{name:10s} tree={r['tree']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"compiled={r['compiled']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"speedup={r['speedup']:.2f}x")

    if args.update or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"baseline written: {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print("\nPERF REGRESSION:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nok: within {args.tolerance:.0%} of {BASELINE_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
