#!/usr/bin/env python
"""Performance regression gate for the engines and instrumented tools.

Re-runs ``benchmarks/bench_perf_engine.py`` (clean execution),
``benchmarks/bench_perf_tools.py`` (instrumented profiler / dyndep),
``benchmarks/bench_perf_parallel.py`` (real multi-core execution), and
``benchmarks/bench_perf_incr.py`` (incremental re-analysis) and
compares fresh numbers against the committed baselines
``BENCH_engine.json``, ``BENCH_tools.json``, ``BENCH_parallel.json``,
and ``BENCH_incremental.json``.  Fails (exit 1) when any path
regresses by more than ``--tolerance`` (default 20%) on any workload,
when the compiled engine drops below the 2x-over-tree contract, when
the transpiled engine drops below the 10x-over-compiled contract, when
an instrumented fast path drops below the 3x-over-tree-observer
contract, when a warm-edit re-analysis drops below the 10x-over-cold-
pipeline contract (or loses bit parity with a cold run), or — on hosts
with >= 4 free cores — when real parallel execution drops below the
1.5x-at-4-workers contract (bit-parity and the monotonic
predicted-speedup shape gate on every host).  The ``service`` gate
(``benchmarks/bench_perf_service.py`` vs ``BENCH_service.json``)
additionally enforces the scale-out contracts: sharded warm throughput
>= 2x the single-pool server at 16 concurrent clients, and a cold
64-client same-key storm across two server processes computing its
artifact exactly once with bit-identical responses.

Run it next to the tier-1 suite::

    PYTHONPATH=src python scripts/perf_check.py

The baselines are host-dependent (wall-clock ops/sec), so regenerate
them when moving to new hardware::

    PYTHONPATH=src python scripts/perf_check.py --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

import bench_perf_engine  # noqa: E402
import bench_perf_incr  # noqa: E402
import bench_perf_parallel  # noqa: E402
import bench_perf_service  # noqa: E402
import bench_perf_tools  # noqa: E402


def compare_engine(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages for every >tolerance ops/sec drop."""
    failures = []
    for name, base in baseline["workloads"].items():
        cur = fresh["workloads"].get(name)
        if cur is None:
            failures.append(f"engine/{name}: missing from fresh run")
            continue
        for engine in ("tree", "compiled", "transpiled"):
            if engine not in base:
                continue
            was = base[engine]["ops_per_sec"]
            now = cur[engine]["ops_per_sec"]
            if now < was * (1.0 - tolerance):
                failures.append(
                    f"engine/{name}/{engine}: {now / 1e6:.2f}M ops/s is "
                    f"{(1 - now / was):.0%} below baseline "
                    f"{was / 1e6:.2f}M ops/s (tolerance {tolerance:.0%})")
        if cur["speedup"] < bench_perf_engine.MIN_SPEEDUP:
            failures.append(
                f"engine/{name}: compiled/tree speedup "
                f"{cur['speedup']:.2f}x below the "
                f"{bench_perf_engine.MIN_SPEEDUP}x contract")
    return failures


def compare_transpiled(baseline: dict, fresh: dict,
                       tolerance: float) -> list:
    """Failure messages for the transpiled-engine gate."""
    failures = []
    for name, base in baseline["workloads"].items():
        cur = fresh["workloads"].get(name)
        if cur is None:
            failures.append(f"transpiled/{name}: missing from fresh run")
            continue
        if "transpiled" in base:
            was = base["transpiled"]["ops_per_sec"]
            now = cur["transpiled"]["ops_per_sec"]
            if now < was * (1.0 - tolerance):
                failures.append(
                    f"transpiled/{name}: {now / 1e6:.2f}M ops/s is "
                    f"{(1 - now / was):.0%} below baseline "
                    f"{was / 1e6:.2f}M ops/s (tolerance {tolerance:.0%})")
        if cur["transpiled_speedup"] <= 1.0:
            failures.append(
                f"transpiled/{name}: not faster than the compiled "
                f"engine ({cur['transpiled_speedup']:.2f}x)")
    mdg = fresh["workloads"].get("mdg")
    if mdg and mdg["transpiled_speedup"] < \
            bench_perf_engine.MIN_TRANSPILED_SPEEDUP:
        failures.append(
            f"transpiled/mdg: transpiled/compiled speedup "
            f"{mdg['transpiled_speedup']:.2f}x below the "
            f"{bench_perf_engine.MIN_TRANSPILED_SPEEDUP}x contract")
    return failures


def compare_tools(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages for the instrumented-tools gate."""
    failures = []
    for name, base_tools in baseline["workloads"].items():
        cur_tools = fresh["workloads"].get(name)
        if cur_tools is None:
            failures.append(f"tools/{name}: missing from fresh run")
            continue
        for tool, base in base_tools.items():
            cur = cur_tools.get(tool)
            if cur is None:
                failures.append(f"tools/{name}/{tool}: missing from "
                                f"fresh run")
                continue
            for path in ("tree", "generic", "fast"):
                was = base[path]["ops_per_sec"]
                now = cur[path]["ops_per_sec"]
                if now < was * (1.0 - tolerance):
                    failures.append(
                        f"tools/{name}/{tool}/{path}: "
                        f"{now / 1e6:.2f}M ops/s is "
                        f"{(1 - now / was):.0%} below baseline "
                        f"{was / 1e6:.2f}M ops/s "
                        f"(tolerance {tolerance:.0%})")
            if cur["speedup_vs_tree"] < bench_perf_tools.MIN_SPEEDUP:
                failures.append(
                    f"tools/{name}/{tool}: fast path "
                    f"{cur['speedup_vs_tree']:.2f}x over the tree "
                    f"observer path, below the "
                    f"{bench_perf_tools.MIN_SPEEDUP}x contract")
    return failures


def compare_parallel(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages for the real-parallel-execution gate.

    Bit-parity, the monotonic predicted-speedup shape, and the
    sequential-throughput regression check gate on every host; the
    measured ≥``MIN_PARALLEL_SPEEDUP``x-at-4-workers contract and the
    measured-speedup shape only gate on hosts with enough free cores
    (measured wall speedups on a 1-core box are time-slicing noise)."""
    failures = []
    if not fresh["parity"]:
        failures.append("parallel: execution diverged from the "
                        "sequential transpiled engine")
    counts = sorted(int(k) for k in fresh["predicted"])
    pred = [fresh["predicted"][str(p)] for p in counts]
    if pred != sorted(pred):
        failures.append(f"parallel: predicted speedups not monotonic "
                        f"over {counts}: {pred}")
    was = baseline["seq"]["ops_per_sec"]
    now = fresh["seq"]["ops_per_sec"]
    if now < was * (1.0 - tolerance):
        failures.append(
            f"parallel/seq: {now / 1e6:.2f}M ops/s is "
            f"{(1 - now / was):.0%} below baseline {was / 1e6:.2f}M "
            f"ops/s (tolerance {tolerance:.0%})")
    if fresh["host"]["cores"] >= bench_perf_parallel.MIN_CORES_FOR_SPEEDUP:
        sp = fresh["workers"]["4"]["speedup"]
        if sp < bench_perf_parallel.MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"parallel: measured speedup {sp:.2f}x at 4 workers "
                f"below the "
                f"{bench_perf_parallel.MIN_PARALLEL_SPEEDUP}x contract")
        measured = [fresh["workers"][str(p)]["speedup"] for p in counts]
        if any(b < a * 0.9 for a, b in zip(measured, measured[1:])):
            failures.append(f"parallel: measured speedups not "
                            f"(near-)monotonic over {counts}: {measured}")
    return failures


def compare_incremental(baseline: dict, fresh: dict,
                        tolerance: float) -> list:
    """Failure messages for the incremental re-analysis gate.

    Bit parity and the ≥``MIN_WARM_SPEEDUP``x / ``MIN_HOT_SPEEDUP``x
    contracts gate against the *fresh* run (host-independent ratios);
    the seconds comparison against the baseline catches absolute
    warm-path regressions that a uniformly slower host would mask."""
    failures = []
    for name, base in baseline["workloads"].items():
        cur = fresh["workloads"].get(name)
        if cur is None:
            failures.append(f"incremental/{name}: missing from fresh run")
            continue
        if not cur["parity"]:
            failures.append(
                f"incremental/{name}: warm-edit artifact not "
                f"bit-identical to a cold run")
        for regime, contract in (
                ("warm", bench_perf_incr.MIN_WARM_SPEEDUP),
                ("hot", bench_perf_incr.MIN_HOT_SPEEDUP)):
            sp = cur[f"{regime}_speedup"]
            if sp < contract:
                failures.append(
                    f"incremental/{name}: {regime} re-analysis only "
                    f"{sp:.1f}x over the cold full pipeline, below "
                    f"the {contract}x contract")
        for field in ("warm_edit_s", "hot_s"):
            was, now = base[field], cur[field]
            if now > was * (1.0 + tolerance):
                failures.append(
                    f"incremental/{name}/{field}: {now * 1e3:.1f}ms is "
                    f"{(now / was - 1):.0%} above baseline "
                    f"{was * 1e3:.1f}ms (tolerance {tolerance:.0%})")
    return failures


def compare_service(baseline: dict, fresh: dict, tolerance: float) -> list:
    """Failure messages for the scale-out service gate."""
    failures = []
    was = baseline["sharded"]["requests_per_sec"]
    now = fresh["sharded"]["requests_per_sec"]
    if now < was * (1.0 - tolerance):
        failures.append(
            f"service/sharded: {now:.0f} req/s is "
            f"{(1 - now / was):.0%} below baseline {was:.0f} req/s "
            f"(tolerance {tolerance:.0%})")
    if fresh["warm_speedup"] < bench_perf_service.MIN_WARM_SPEEDUP:
        failures.append(
            f"service: sharded warm throughput only "
            f"{fresh['warm_speedup']:.2f}x the single-pool server, "
            f"below the {bench_perf_service.MIN_WARM_SPEEDUP}x "
            f"contract at {fresh['clients']} clients")
    storm = fresh["cold_storm"]
    if storm["computations"] != 1 or not storm["bit_identical"]:
        failures.append(
            f"service: cold same-key storm computed "
            f"{storm['computations']} times "
            f"(bit_identical={storm['bit_identical']}) — want exactly "
            f"one computation across {storm['server_processes']} "
            f"server processes")
    return failures


#: (label, bench module, printer, comparator); engine and transpiled
#: share one measurement pass over bench_perf_engine
GATES = (
    ("engine", bench_perf_engine, compare_engine),
    ("transpiled", bench_perf_engine, compare_transpiled),
    ("tools", bench_perf_tools, compare_tools),
    ("parallel", bench_perf_parallel, compare_parallel),
    ("incremental", bench_perf_incr, compare_incremental),
    ("service", bench_perf_service, compare_service),
)


def _print_engine(fresh: dict) -> None:
    for name, r in fresh["workloads"].items():
        print(f"{name:10s} tree={r['tree']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"compiled={r['compiled']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"speedup={r['speedup']:.2f}x")


def _print_transpiled(fresh: dict) -> None:
    for name, r in fresh["workloads"].items():
        print(f"{name:10s} "
              f"compiled={r['compiled']['ops_per_sec'] / 1e6:5.2f}M/s  "
              f"transpiled={r['transpiled']['ops_per_sec'] / 1e6:6.2f}M/s  "
              f"speedup={r['transpiled_speedup']:.2f}x")


def _print_tools(fresh: dict) -> None:
    for name, tools in fresh["workloads"].items():
        for tool, r in tools.items():
            print(f"{name:10s} {tool:8s} "
                  f"tree={r['tree']['ops_per_sec'] / 1e6:5.2f}M/s  "
                  f"generic={r['generic']['ops_per_sec'] / 1e6:5.2f}M/s  "
                  f"fast={r['fast']['ops_per_sec'] / 1e6:5.2f}M/s  "
                  f"vs-tree={r['speedup_vs_tree']:.2f}x")


def _print_parallel(fresh: dict) -> None:
    print(f"seq        {fresh['seq']['seconds']:.3f}s  "
          f"{fresh['seq']['ops_per_sec'] / 1e6:.2f}M ops/s  "
          f"(host cores: {fresh['host']['cores']})")
    for w, r in fresh["workers"].items():
        print(f"workers={w}  {r['seconds']:.3f}s  "
              f"measured={r['speedup']:.2f}x  "
              f"predicted={fresh['predicted'][w]:.2f}x  "
              f"parity={'ok' if r['parity'] else 'DIVERGED'}")


def _print_incremental(fresh: dict) -> None:
    for name, r in fresh["workloads"].items():
        print(f"{name:10s} full={r['full_s'] * 1e3:7.1f}ms  "
              f"warm-edit={r['warm_edit_s'] * 1e3:6.1f}ms  "
              f"hot={r['hot_s'] * 1e3:5.1f}ms  "
              f"warm={r['warm_speedup']:.1f}x  hot={r['hot_speedup']:.1f}x  "
              f"parity={'ok' if r['parity'] else 'DIVERGED'}")


def _print_service(fresh: dict) -> None:
    single = fresh["single_pool"]
    sharded = fresh["sharded"]
    storm = fresh["cold_storm"]
    print(f"single-pool  {single['requests_per_sec']:7.0f} req/s  "
          f"({fresh['clients']} warm clients)")
    print(f"sharded      {sharded['requests_per_sec']:7.0f} req/s  "
          f"speedup={fresh['warm_speedup']:.2f}x")
    print(f"cold storm   {storm['clients']} clients x 2 processes: "
          f"{storm['computations']} computation in "
          f"{storm['seconds']:.2f}s, "
          f"bit-identical={storm['bit_identical']}")


PRINTERS = {"engine": _print_engine, "transpiled": _print_transpiled,
            "tools": _print_tools, "parallel": _print_parallel,
            "incremental": _print_incremental,
            "service": _print_service}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional ops/sec drop (default 0.20)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite BENCH_engine.json and BENCH_tools.json "
                         "from this run")
    ap.add_argument("--only", choices=["engine", "transpiled", "tools",
                                       "parallel", "incremental",
                                       "service"],
                    help="run a single gate")
    args = ap.parse_args(argv)

    failures = []
    fresh_cache: dict = {}
    written = set()
    for label, bench, comparator in GATES:
        if args.only and label != args.only:
            continue
        print(f"-- {label} gate --")
        key = bench.__name__
        if key not in fresh_cache:
            fresh_cache[key] = bench.run_bench()
        fresh = fresh_cache[key]
        PRINTERS[label](fresh)
        if args.update or not bench.BASELINE_PATH.exists():
            if key not in written:
                bench.BASELINE_PATH.write_text(
                    json.dumps(fresh, indent=2) + "\n")
                print(f"baseline written: {bench.BASELINE_PATH}")
                written.add(key)
            continue
        baseline = json.loads(bench.BASELINE_PATH.read_text())
        failures += comparator(baseline, fresh, args.tolerance)

    if failures:
        print("\nPERF REGRESSION:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nok: within {args.tolerance:.0%} of the committed baselines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
