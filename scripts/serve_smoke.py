#!/usr/bin/env python
"""End-to-end smoke test for the analysis service (CI gate).

Starts the HTTP server on an ephemeral port, submits a corpus job,
polls it to completion, fetches the artifact, re-submits to prove the
cache serves the repeat, and checks ``/metrics`` consistency.  Exits
non-zero on any failure::

    PYTHONPATH=src python scripts/serve_smoke.py [--workload ora]

With ``--inject SPEC`` the script runs the *fault-injected* smoke
instead: the server is started with a seeded chaos plan, several jobs
are pushed through it (crashes are retried, the service must keep
answering), and a deliberately hung job must be killed by its deadline
with reason exactly ``"deadline exceeded"``::

    PYTHONPATH=src python scripts/serve_smoke.py --inject "crash=0.5,seed=1"
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def call(base: str, method: str, path: str, body=None, timeout=60):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(base + path, data=data, method=method,
                                 headers={"Content-Type":
                                          "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def fail(message: str) -> "NoReturn":
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def poll(base: str, job: dict, timeout: float) -> dict:
    deadline = time.time() + timeout
    while job["state"] not in ("done", "failed"):
        expect(time.time() < deadline, f"job {job['id']} timed out")
        time.sleep(0.2)
        status, out = call(base, "GET", f"/jobs/{job['id']}")
        expect(status == 200, f"GET /jobs/{job['id']} -> {status}")
        job = out["job"]
    return job


def fault_smoke(args) -> int:
    """The chaos gate: seeded fault injection + deadline enforcement."""
    from repro.service import AnalysisServer

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        with AnalysisServer(cache_dir=str(Path(tmp) / "cache"), port=0,
                            inject=args.inject) as server:
            base = server.url
            print(f"server up at {base} [inject {args.inject!r}]")

            # a burst of distinct jobs through the chaos plan: every
            # injected fault is a recoverable one-shot, so all must
            # finish "done" (crashes retried, transients retried)
            jobs = []
            for i in range(4):
                status, out = call(base, "POST", "/jobs",
                                   {"workload": args.workload,
                                    "options": {"salt": str(i)}})
                expect(status == 202, f"POST /jobs -> {status}: {out}")
                jobs.append(out["job"])
            for job in jobs:
                job = poll(base, job, args.timeout)
                expect(job["state"] == "done",
                       f"chaos job {job['id']} -> {job['state']}: "
                       f"{job.get('error')}")
            print(f"{len(jobs)} jobs survived the chaos plan")

            # a deliberately hung job must die at its deadline
            marker = Path(tmp) / "hang-marker"
            status, out = call(base, "POST", "/jobs", {
                "workload": args.workload,
                "options": {"fault": f"hang-once:{marker}:60",
                            "deadline_s": 1.5}})
            expect(status == 202, f"POST hang job -> {status}")
            hung = poll(base, out["job"], args.timeout)
            expect(hung["state"] == "failed",
                   f"hung job ended {hung['state']}")
            expect(hung["error"] == "deadline exceeded",
                   f"wrong deadline reason: {hung['error']!r}")
            print(f"deadline enforced: {hung['id']} failed "
                  f"with {hung['error']!r}")

            # the service is still alive and telling the story
            status, health = call(base, "GET", "/healthz")
            expect(status == 200 and health.get("ok"),
                   "service unhealthy after chaos")
            status, metrics = call(base, "GET", "/metrics")
            counters = metrics["counters"]
            expect(counters.get("jobs_deadline_exceeded", 0) >= 1,
                   f"deadline not counted: {counters}")
            expect(counters.get("failures_deadline", 0) >= 1,
                   f"failure taxonomy missing: {counters}")
            interesting = {k: v for k, v in sorted(counters.items())
                           if k.startswith(("faults", "failures", "pool",
                                            "jobs", "worker"))}
            print(f"metrics ok: {interesting}")

    print("FAULT SMOKE OK")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workload", default="ora",
                    help="corpus entry to analyze (default: ora)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="seconds to wait for the job")
    ap.add_argument("--inject", metavar="SPEC",
                    help="run the fault-injected smoke with this seeded "
                         "chaos plan (e.g. 'crash=0.5,seed=1')")
    args = ap.parse_args(argv)

    if args.inject:
        return fault_smoke(args)

    from repro.service import AnalysisServer

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache_dir:
        with AnalysisServer(cache_dir=cache_dir, port=0) as server:
            base = server.url
            print(f"server up at {base} (cache {cache_dir})")

            status, health = call(base, "GET", "/healthz")
            expect(status == 200 and health.get("ok"), "healthz not ok")

            status, corpus = call(base, "GET", "/corpus")
            expect(status == 200, f"/corpus -> {status}")
            names = {w["name"] for w in corpus["workloads"]}
            expect(args.workload in names,
                   f"{args.workload!r} missing from /corpus")

            # submit and poll to completion
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload})
            expect(status == 202, f"POST /jobs -> {status}: {out}")
            job = out["job"]
            deadline = time.time() + args.timeout
            while job["state"] not in ("done", "failed"):
                expect(time.time() < deadline, "job timed out")
                time.sleep(0.2)
                status, out = call(base, "GET", f"/jobs/{job['id']}")
                expect(status == 200, f"GET /jobs/{job['id']} -> {status}")
                job = out["job"]
            expect(job["state"] == "done",
                   f"job failed: {job.get('error')}")
            print(f"job {job['id']} done in "
                  f"{job['finished_at'] - job['created_at']:.2f}s "
                  f"(attempts={job['attempts']})")

            status, artifact = call(base, "GET",
                                    f"/artifacts/{job['key']}")
            expect(status == 200, f"GET /artifacts -> {status}")
            speedup = artifact["execution"]["speedup"]
            expect(speedup >= 1.0, f"nonsense speedup {speedup}")
            print(f"artifact ok: speedup {speedup:.2f}x, "
                  f"{len(artifact['plan'])} loop plans")

            # the repeat must be served from the warm cache
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload})
            expect(status == 202 and out["job"]["cached"],
                   "repeat submission was not cache-served")

            status, metrics = call(base, "GET", "/metrics")
            expect(status == 200, f"/metrics -> {status}")
            counters = metrics["counters"]
            expect(counters.get("jobs_completed", 0) >= 1,
                   f"no completed jobs in metrics: {counters}")
            expect(counters.get("cache_hits", 0) >= 1,
                   f"no cache hits in metrics: {counters}")
            expect(metrics["cache_hit_rate"] > 0.0, "zero cache hit-rate")
            print(f"metrics ok: {counters}; "
                  f"hit-rate {metrics['cache_hit_rate']:.0%}")

            # a transpiled-engine job, then a warm repeat (distinct
            # salt dodges the artifact cache) that must skip codegen
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload,
                                "options": {"engine": "transpiled",
                                            "salt": "cg1"}})
            expect(status == 202, f"POST transpiled job -> {status}")
            tjob = poll(base, out["job"], args.timeout)
            expect(tjob["state"] == "done",
                   f"transpiled job failed: {tjob.get('error')}")
            status, metrics = call(base, "GET", "/metrics")
            counters = metrics["counters"]
            expect(counters.get("codegen_cache_miss", 0) >= 1,
                   f"transpiled job did not codegen: {counters}")
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload,
                                "options": {"engine": "transpiled",
                                            "salt": "cg2"}})
            expect(status == 202, f"POST transpiled repeat -> {status}")
            tjob = poll(base, out["job"], args.timeout)
            expect(tjob["state"] == "done",
                   f"transpiled repeat failed: {tjob.get('error')}")
            status, metrics = call(base, "GET", "/metrics")
            counters = metrics["counters"]
            expect(counters.get("codegen_cache_hit", 0) >= 1,
                   f"warm transpiled repeat re-ran codegen: {counters}")
            print(f"transpiled jobs ok: codegen "
                  f"miss={counters['codegen_cache_miss']} "
                  f"hit={counters['codegen_cache_hit']}")

            # error paths stay errors
            expect(call(base, "POST", "/jobs",
                        {"workload": "nope"})[0] == 400,
                   "unknown workload did not 400")
            expect(call(base, "GET", "/no/route")[0] == 404,
                   "unknown route did not 404")

    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
