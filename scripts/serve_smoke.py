#!/usr/bin/env python
"""End-to-end smoke test for the analysis service (CI gate).

Starts the sharded asyncio HTTP server on an ephemeral port, submits a
corpus job, polls it to completion, streams its progress events over
SSE, fetches the artifact, re-submits to prove the cache serves the
repeat, checks ``/metrics`` consistency — then spawns a **second
server process** on the same cache directory and storms both with the
same cold key to prove cross-process single-flight: the artifact is
computed exactly once, and both servers hand back bit-identical
bytes.  Exits non-zero on any failure::

    PYTHONPATH=src python scripts/serve_smoke.py [--workload ora]

With ``--inject SPEC`` the script runs the *fault-injected* smoke
instead: the server is started with a seeded chaos plan, several jobs
are pushed through it (crashes are retried, the service must keep
answering), a deliberately hung job must be killed by its deadline
with reason exactly ``"deadline exceeded"``, and a zero-capacity
server must shed new work deterministically with 429 + Retry-After::

    PYTHONPATH=src python scripts/serve_smoke.py --inject "crash=0.5,seed=1"
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from urllib.parse import urlsplit

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

# a peer server process for the single-flight storm: same cache dir,
# own pid, own pools — only the claim files coordinate the two
CHILD_SERVER = """\
import sys
from repro.service import AsyncAnalysisServer
srv = AsyncAnalysisServer(cache_dir=sys.argv[1], shards=2)
srv.start()
print(srv.url, flush=True)
sys.stdin.read()                  # parent closes stdin to stop us
srv.stop()
"""


def call(base: str, method: str, path: str, body=None, timeout=60):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(base + path, data=data, method=method,
                                 headers={"Content-Type":
                                          "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def fail(message: str) -> "NoReturn":
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def expect(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


def poll(base: str, job: dict, timeout: float) -> dict:
    deadline = time.time() + timeout
    while job["state"] not in ("done", "failed"):
        expect(time.time() < deadline, f"job {job['id']} timed out")
        time.sleep(0.2)
        status, out = call(base, "GET", f"/jobs/{job['id']}")
        expect(status == 200, f"GET /jobs/{job['id']} -> {status}")
        job = out["job"]
    return job


def read_sse(base: str, job_id: str, timeout: float):
    """GET /jobs/<id>/events with an SSE accept header; return the
    status, content type, and full stream body."""
    parts = urlsplit(base)
    conn = http.client.HTTPConnection(parts.hostname, parts.port,
                                      timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/events",
                     headers={"Accept": "text/event-stream"})
        resp = conn.getresponse()
        return resp.status, resp.getheader("Content-Type"), \
            resp.read().decode()
    finally:
        conn.close()


def fault_smoke(args) -> int:
    """The chaos gate: seeded fault injection + deadline enforcement."""
    from repro.service import AsyncAnalysisServer

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        with AsyncAnalysisServer(cache_dir=str(Path(tmp) / "cache"),
                                 port=0, shards=2,
                                 inject=args.inject) as server:
            base = server.url
            print(f"server up at {base} [inject {args.inject!r}]")

            # a burst of distinct jobs through the chaos plan: every
            # injected fault is a recoverable one-shot, so all must
            # finish "done" (crashes retried, transients retried)
            jobs = []
            for i in range(4):
                status, out = call(base, "POST", "/jobs",
                                   {"workload": args.workload,
                                    "options": {"salt": str(i)}})
                expect(status == 202, f"POST /jobs -> {status}: {out}")
                jobs.append(out["job"])
            for job in jobs:
                job = poll(base, job, args.timeout)
                expect(job["state"] == "done",
                       f"chaos job {job['id']} -> {job['state']}: "
                       f"{job.get('error')}")
            print(f"{len(jobs)} jobs survived the chaos plan")

            # a deliberately hung job must die at its deadline
            marker = Path(tmp) / "hang-marker"
            status, out = call(base, "POST", "/jobs", {
                "workload": args.workload,
                "options": {"fault": f"hang-once:{marker}:60",
                            "deadline_s": 1.5}})
            expect(status == 202, f"POST hang job -> {status}")
            hung = poll(base, out["job"], args.timeout)
            expect(hung["state"] == "failed",
                   f"hung job ended {hung['state']}")
            expect(hung["error"] == "deadline exceeded",
                   f"wrong deadline reason: {hung['error']!r}")
            print(f"deadline enforced: {hung['id']} failed "
                  f"with {hung['error']!r}")

            # the service is still alive and telling the story
            status, health = call(base, "GET", "/healthz")
            expect(status == 200 and health.get("ok"),
                   "service unhealthy after chaos")
            status, metrics = call(base, "GET", "/metrics")
            counters = metrics["counters"]
            expect(counters.get("jobs_deadline_exceeded", 0) >= 1,
                   f"deadline not counted: {counters}")
            expect(counters.get("failures_deadline", 0) >= 1,
                   f"failure taxonomy missing: {counters}")
            interesting = {k: v for k, v in sorted(counters.items())
                           if k.startswith(("faults", "failures", "pool",
                                            "jobs", "worker"))}
            print(f"metrics ok: {interesting}")

        # deterministic shedding: a zero-capacity server must 429 every
        # piece of new work, with a Retry-After hint and shed counters
        with AsyncAnalysisServer(cache_dir=str(Path(tmp) / "cache"),
                                 port=0, shards=1, inline=True,
                                 max_queue=0) as shed_srv:
            req = urllib.request.Request(
                shed_srv.url + "/jobs",
                data=json.dumps({"workload": args.workload,
                                 "options": {"salt": "shed"}}).encode(),
                method="POST",
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(req, timeout=30):
                    fail("full queue did not shed new work")
            except urllib.error.HTTPError as exc:
                expect(exc.code == 429,
                       f"full queue -> {exc.code}, want 429")
                expect(int(exc.headers.get("Retry-After", "0")) >= 1,
                       "429 without a Retry-After hint")
                payload = json.loads(exc.read())
                expect(payload.get("retry_after_s", 0) > 0,
                       f"no retry_after_s in body: {payload}")
            status, metrics = call(shed_srv.url, "GET", "/metrics")
            counters = metrics["counters"]
            expect(counters.get("shed_total", 0) == 1
                   and counters.get("shed_queue_full", 0) == 1,
                   f"shed taxonomy wrong: {counters}")
            print(f"shedding ok: 429 + Retry-After, "
                  f"shed_queue_full={counters['shed_queue_full']}")

    print("FAULT SMOKE OK")
    return 0


def single_flight_storm(base: str, cache_dir: str, workload: str,
                        timeout: float) -> None:
    """Spawn a second server *process* on the same cache directory and
    hit both with the same cold key: the claim protocol must make
    exactly one of them compute, and both must serve identical bytes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    child = subprocess.Popen([sys.executable, "-c", CHILD_SERVER,
                              cache_dir],
                             stdin=subprocess.PIPE,
                             stdout=subprocess.PIPE, env=env, text=True)
    try:
        peer = child.stdout.readline().strip()
        expect(peer.startswith("http"),
               f"child server failed to start: {peer!r}")
        print(f"peer server up at {peer} (same cache dir)")
        body = {"workload": workload,
                "options": {"salt": "single-flight"}}
        pre = call(base, "GET", "/metrics")[1]["counters"] \
            .get("artifacts_computed", 0)
        status1, out1 = call(base, "POST", "/jobs", body)
        status2, out2 = call(peer, "POST", "/jobs", body)
        expect(status1 == 202 and status2 == 202,
               f"storm POSTs -> {status1}/{status2}")
        job1 = poll(base, out1["job"], timeout)
        job2 = poll(peer, out2["job"], timeout)
        expect(job1["state"] == "done" and job2["state"] == "done",
               f"storm jobs -> {job1['state']}/{job2['state']}")
        expect(job1["key"] == job2["key"], "storm keys diverged")
        art1 = call(base, "GET", f"/artifacts/{job1['key']}")[1]
        art2 = call(peer, "GET", f"/artifacts/{job2['key']}")[1]
        expect(art1 == art2, "servers returned different artifacts")
        post = call(base, "GET", "/metrics")[1]["counters"] \
            .get("artifacts_computed", 0)
        peer_computed = call(peer, "GET", "/metrics")[1]["counters"] \
            .get("artifacts_computed", 0)
        computed = (post - pre) + peer_computed
        expect(computed == 1,
               f"same-key storm computed {computed} times, want 1")
        print(f"single-flight ok: two processes, one computation, "
              f"bit-identical artifacts")
    finally:
        child.stdin.close()
        child.wait(timeout=30)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workload", default="ora",
                    help="corpus entry to analyze (default: ora)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="seconds to wait for the job")
    ap.add_argument("--inject", metavar="SPEC",
                    help="run the fault-injected smoke with this seeded "
                         "chaos plan (e.g. 'crash=0.5,seed=1')")
    args = ap.parse_args(argv)

    if args.inject:
        return fault_smoke(args)

    from repro.service import AsyncAnalysisServer

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache_dir:
        with AsyncAnalysisServer(cache_dir=cache_dir, port=0,
                                 shards=2) as server:
            base = server.url
            print(f"server up at {base} (cache {cache_dir}, 2 shards)")

            status, health = call(base, "GET", "/healthz")
            expect(status == 200 and health.get("ok"), "healthz not ok")

            status, corpus = call(base, "GET", "/corpus")
            expect(status == 200, f"/corpus -> {status}")
            names = {w["name"] for w in corpus["workloads"]}
            expect(args.workload in names,
                   f"{args.workload!r} missing from /corpus")

            # submit and poll to completion
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload})
            expect(status == 202, f"POST /jobs -> {status}: {out}")
            job = out["job"]
            deadline = time.time() + args.timeout
            while job["state"] not in ("done", "failed"):
                expect(time.time() < deadline, "job timed out")
                time.sleep(0.2)
                status, out = call(base, "GET", f"/jobs/{job['id']}")
                expect(status == 200, f"GET /jobs/{job['id']} -> {status}")
                job = out["job"]
            expect(job["state"] == "done",
                   f"job failed: {job.get('error')}")
            print(f"job {job['id']} done in "
                  f"{job['finished_at'] - job['created_at']:.2f}s "
                  f"(attempts={job['attempts']}, shard={job['shard']})")

            # progress events: JSON snapshot and the SSE stream agree
            status, out = call(base, "GET", f"/jobs/{job['id']}/events")
            expect(status == 200 and out["finished"],
                   f"GET events -> {status}: {out}")
            names = [e["event"] for e in out["events"]]
            expect(names[0] == "submitted" and names[-1] == "done",
                   f"event sequence wrong: {names}")
            status, ctype, stream = read_sse(base, job["id"],
                                             args.timeout)
            expect(status == 200 and ctype == "text/event-stream",
                   f"SSE -> {status} {ctype}")
            expect("event: end" in stream, "SSE stream never ended")
            frames = sum(1 for line in stream.splitlines()
                         if line.startswith("data: "))
            expect(frames >= len(names),
                   f"SSE dropped events: {frames} < {len(names)}")
            print(f"events ok: {names} (SSE {frames} frames)")

            status, artifact = call(base, "GET",
                                    f"/artifacts/{job['key']}")
            expect(status == 200, f"GET /artifacts -> {status}")
            speedup = artifact["execution"]["speedup"]
            expect(speedup >= 1.0, f"nonsense speedup {speedup}")
            print(f"artifact ok: speedup {speedup:.2f}x, "
                  f"{len(artifact['plan'])} loop plans")

            # the repeat must be served from the warm cache
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload})
            expect(status == 202 and out["job"]["cached"],
                   "repeat submission was not cache-served")

            status, metrics = call(base, "GET", "/metrics")
            expect(status == 200, f"/metrics -> {status}")
            counters = metrics["counters"]
            expect(counters.get("jobs_completed", 0) >= 1,
                   f"no completed jobs in metrics: {counters}")
            expect(counters.get("cache_hits", 0) >= 1,
                   f"no cache hits in metrics: {counters}")
            expect(metrics["cache_hit_rate"] > 0.0, "zero cache hit-rate")
            print(f"metrics ok: {counters}; "
                  f"hit-rate {metrics['cache_hit_rate']:.0%}")

            # a transpiled-engine job, then a warm repeat (distinct
            # salt dodges the artifact cache) that must skip codegen
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload,
                                "options": {"engine": "transpiled",
                                            "salt": "cg1"}})
            expect(status == 202, f"POST transpiled job -> {status}")
            tjob = poll(base, out["job"], args.timeout)
            expect(tjob["state"] == "done",
                   f"transpiled job failed: {tjob.get('error')}")
            status, metrics = call(base, "GET", "/metrics")
            counters = metrics["counters"]
            expect(counters.get("codegen_cache_miss", 0) >= 1,
                   f"transpiled job did not codegen: {counters}")
            status, out = call(base, "POST", "/jobs",
                               {"workload": args.workload,
                                "options": {"engine": "transpiled",
                                            "salt": "cg2"}})
            expect(status == 202, f"POST transpiled repeat -> {status}")
            tjob = poll(base, out["job"], args.timeout)
            expect(tjob["state"] == "done",
                   f"transpiled repeat failed: {tjob.get('error')}")
            status, metrics = call(base, "GET", "/metrics")
            counters = metrics["counters"]
            expect(counters.get("codegen_cache_hit", 0) >= 1,
                   f"warm transpiled repeat re-ran codegen: {counters}")
            print(f"transpiled jobs ok: codegen "
                  f"miss={counters['codegen_cache_miss']} "
                  f"hit={counters['codegen_cache_hit']}")

            # error paths stay errors
            expect(call(base, "POST", "/jobs",
                        {"workload": "nope"})[0] == 400,
                   "unknown workload did not 400")
            expect(call(base, "GET", "/no/route")[0] == 404,
                   "unknown route did not 404")

            # the tentpole contract: two server processes, one cache
            # dir, one cold key — exactly one computation
            single_flight_storm(base, cache_dir, args.workload,
                                args.timeout)

    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
