#!/usr/bin/env python
"""Incremental-analysis gate: cone invalidation + bit parity, end to end.

For each workload (default: ``mdg,hydro,hydro2d`` — the three
deepest call graphs in the corpus):

1. run a cold analysis into a fresh on-disk ``proc/`` store,
2. insert a one-line comment into one procedure (the last in program
   order — content change, same semantics),
3. re-run warm against the same store and assert:

   * **exact invalidation** — the ``incr.cone`` spans name exactly the
     victim plus every procedure whose *after*-cone (liveness
     continuation context) contains it; everything else is served from
     the cache (``incr.reuse`` spans),
   * **bit parity** — the warm artifact is byte-identical (canonical
     JSON) to a cold run on the edited bytes: caching is invisible in
     the payload,
   * **hot stability** — a second run of the unchanged edited source
     recomputes nothing at all.

Exit code 0 = all contracts hold on every workload.  This is CI gate 6
(``bash scripts/ci_check.sh``); run it standalone with::

    PYTHONPATH=src python scripts/incr_check.py
"""

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.incremental import (IncrementalAnalyzer,  # noqa: E402
                                        IncrementalKeys)
from repro.ir import build_program  # noqa: E402
from repro.obs import Tracer, activate  # noqa: E402
from repro.service.artifacts import ArtifactStore, canonical_json  # noqa: E402
from repro.workloads import get  # noqa: E402

DEFAULT_WORKLOADS = "mdg,hydro,hydro2d"


def check(ok: bool, label: str, detail: str = "") -> bool:
    mark = "ok  " if ok else "FAIL"
    print(f"  [{mark}] {label}" + (f"  ({detail})" if detail else ""))
    return ok


def _analyze(source: str, name: str, store):
    """One traced analysis run: (artifact, recomputed set, reused set)."""
    tracer = Tracer()
    with activate(tracer):
        program = build_program(source, name)
        analyzer = IncrementalAnalyzer(program, source, store=store)
        artifact = analyzer.analysis_artifact()
    spans = tracer.to_dicts()
    recomputed = {s["tags"]["proc"] for s in spans
                  if s["name"] == "incr.cone"
                  and s["tags"].get("kind") == "plan"}
    reused = {s["tags"]["proc"] for s in spans
              if s["name"] == "incr.reuse"
              and s["tags"].get("kind") == "plan"}
    return artifact, recomputed, reused


def run_workload(name: str, root: str) -> bool:
    w = get(name)
    program = build_program(w.source, w.name)
    store = ArtifactStore(os.path.join(root, name))
    _analyze(w.source, w.name, store)

    victim = list(program.procedures)[-1]
    at = program.procedures[victim].source_lines.start
    lines = w.source.splitlines()
    edited = "\n".join(lines[:at] + ["C incr_check probe"] + lines[at:])
    edited_program = build_program(edited, w.name)

    # the exact set a comment edit must invalidate: the victim itself
    # plus every procedure whose liveness continuation context (the
    # *after*-cone) includes it — callers reading the victim only
    # through its summary re-anchor at the value level instead
    keys = IncrementalKeys(edited_program, edited)
    expected = {p for p in edited_program.procedures
                if p == victim or victim in keys.cones.after(p)}

    warm, recomputed, reused = _analyze(edited, w.name, store)
    ok = check(recomputed == expected,
               f"{name}: exact cone invalidation",
               f"victim={victim} recomputed={sorted(recomputed)}")
    ok &= check(reused == set(edited_program.procedures) - expected,
                f"{name}: everything else reused",
                f"{len(reused)}/{len(edited_program.procedures)} procs")

    cold, _, _ = _analyze(edited, w.name,
                          ArtifactStore(os.path.join(root, name + "-cold")))
    ok &= check(canonical_json(warm) == canonical_json(cold),
                f"{name}: warm artifact bit-identical to cold")

    hot, recomputed, _ = _analyze(edited, w.name, store)
    ok &= check(recomputed == set()
                and canonical_json(hot) == canonical_json(cold),
                f"{name}: hot re-run recomputes nothing")
    return ok


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workloads", default=DEFAULT_WORKLOADS,
                    help=f"comma-separated corpus names "
                         f"(default: {DEFAULT_WORKLOADS})")
    args = ap.parse_args(argv)

    ok = True
    with tempfile.TemporaryDirectory(prefix="incr-check-") as root:
        for name in args.workloads.split(","):
            ok &= run_workload(name.strip(), root)
    print("incr_check:", "all contracts hold" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
