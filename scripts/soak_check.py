#!/usr/bin/env python
"""Service soak gate: a 500-program generated batch through the scheduler.

Pushes ``--n`` synthetic workloads (the canonical pinned slice, so the
population covers every trait profile) through a real process-pool
:class:`BatchScheduler` with deliberate duplicate submissions, then
asserts the scale contracts the hand-built 27-workload corpus is too
small to exercise:

* every job completes; zero failures, zero worker crashes, and the
  circuit breaker never opens under sustained load (quiescence),
* in-flight dedupe fires at least once per duplicate seed, and
  re-submitting a finished request is served from the artifact store,
* the finished-job registry stays bounded by ``--max-jobs`` (GC),
* artifacts are **bit-stable**: the scheduler's pool-computed artifact
  for a sampled workload is byte-identical (canonical JSON) to an
  inline in-process recomputation.

Exit code 0 = all contracts hold.  ``--quick`` (CI gate 5) runs a
60-program slice on 2 workers; the full soak defaults to 500 programs
(override with ``--n`` or the ``REPRO_SYNTH_N`` environment knob).

``--http`` drives the same population through the sharded asyncio HTTP
server instead of a bare scheduler: every submission goes over POST
``/jobs``, completion is observed by polling, and the shard placement,
dedupe, and retention contracts are asserted from ``/metrics`` and
``/jobs`` alone — the soak sees only what a real client sees.
"""

import argparse
import json
import os
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service import (AnalysisRequest, ArtifactStore,  # noqa: E402
                           BatchScheduler, ServiceMetrics, canonical_json)
from repro.service.jobs import execute_request  # noqa: E402
from repro.workloads import synth  # noqa: E402

DUP_EVERY = 10          # every 10th program is submitted twice
PARITY_SAMPLE = 5       # artifacts recomputed inline for bit-stability


def check(ok: bool, label: str, detail: str = "") -> bool:
    mark = "ok  " if ok else "FAIL"
    print(f"  [{mark}] {label}" + (f"  ({detail})" if detail else ""))
    return ok


def call(base: str, method: str, path: str, body=None, timeout=120):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(base + path, data=data, method=method,
                                 headers={"Content-Type":
                                          "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def http_soak(args, names, submit_names, n_dupes, max_jobs) -> int:
    """The synth population through the sharded asyncio server: the
    soak observes only what a real HTTP client can observe."""
    from repro.service import AsyncAnalysisServer

    ok = True
    tmp = None
    if args.cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-soak-")
        args.cache_dir = tmp.name
    t0 = time.perf_counter()
    with AsyncAnalysisServer(cache_dir=args.cache_dir, port=0,
                             shards=args.shards, workers=args.workers,
                             max_jobs=max_jobs) as server:
        base = server.url
        print(f"http soak: server up at {base} "
              f"({args.shards} shards, max_jobs={max_jobs}/shard)")
        jobs = []
        for name in submit_names:
            status, out = call(base, "POST", "/jobs",
                               {"workload": name})
            if status == 429:          # backpressure: honor the hint
                time.sleep(out.get("retry_after_s", 0.5))
                status, out = call(base, "POST", "/jobs",
                                   {"workload": name})
            if status != 202:
                print(f"  POST /jobs {name} -> {status}: {out}")
                ok = False
                continue
            jobs.append(out["job"])
        # poll every job to a terminal state, re-checking only
        # laggards (duplicate submissions share one job id)
        by_id = {j["id"]: j for j in jobs}
        deadline = time.time() + args.http_timeout
        pending = {jid for jid, j in by_id.items()
                   if j["state"] not in ("done", "failed")}
        while pending and time.time() < deadline:
            time.sleep(0.2)
            for jid in list(pending):
                status, out = call(base, "GET", f"/jobs/{jid}")
                if status == 200:
                    by_id[jid] = out["job"]
                    if out["job"]["state"] in ("done", "failed"):
                        pending.discard(jid)
                elif status == 404:
                    # the registry GC raced us: the job finished and
                    # was evicted between polls — its artifact is the
                    # durable proof of completion
                    key = by_id[jid]["key"]
                    if call(base, "GET", f"/artifacts/{key}")[0] == 200:
                        by_id[jid] = dict(by_id[jid], state="done")
                        pending.discard(jid)
        elapsed = time.perf_counter() - t0
        ok &= check(not pending, "every job reached a terminal state",
                    f"{len(pending)} still pending")
        jobs = [by_id[j["id"]] for j in jobs]
        states = {}
        for job in jobs:
            states[job["state"]] = states.get(job["state"], 0) + 1
        ok &= check(states.get("done", 0) == len(jobs),
                    "all jobs completed", f"states={states}")

        status, metrics = call(base, "GET", "/metrics")
        counters = metrics["counters"]
        ok &= check(counters.get("jobs_failed", 0) == 0,
                    "zero failed jobs")
        ok &= check(counters.get("worker_crashes", 0) == 0,
                    "zero worker crashes")
        dedup = (counters.get("jobs_deduped", 0)
                 + counters.get("jobs_served_cached", 0))
        ok &= check(dedup >= n_dupes,
                    "every duplicate deduped or served cached",
                    f"{dedup} hits for {n_dupes} duplicates")

        # shard placement: content keys spread the population; with a
        # population far larger than the shard count, every shard works
        shard_load = {}
        for job in jobs:
            shard_load[job["shard"]] = shard_load.get(job["shard"], 0) + 1
        ok &= check(len(shard_load) == args.shards,
                    "every shard took work", f"load={dict(sorted(shard_load.items()))}")
        stats = metrics.get("shards", [])
        ok &= check([s["shard"] for s in stats] ==
                    list(range(args.shards)),
                    "/metrics reports per-shard stats")
        ok &= check(all(s["queue_depth"] == 0 for s in stats),
                    "all shard queues drained")

        # retention: the registry a client sees stays bounded by the
        # per-shard cap (+1 slack per shard for in-flight sweeps)
        status, out = call(base, "GET", "/jobs")
        retained = len(out["jobs"])
        ok &= check(retained <= args.shards * (max_jobs + 1),
                    "finished-job registry bounded",
                    f"{retained} retained <= {args.shards}x({max_jobs}+1)")

        # cached resubmit of a finished request
        status, out = call(base, "POST", "/jobs",
                           {"workload": names[1]})
        ok &= check(status == 202 and out["job"]["cached"],
                    "finished request re-served from artifact store")

        # bit-stability through the whole HTTP + shard + pool stack
        stride = max(1, len(names) // PARITY_SAMPLE)
        sampled = names[::stride][:PARITY_SAMPLE]
        stable = 0
        for name in sampled:
            key = AnalysisRequest(name).key()
            status, served = call(base, "GET", f"/artifacts/{key}")
            inline = execute_request(AnalysisRequest(name))
            if status == 200 and \
                    canonical_json(served) == canonical_json(inline):
                stable += 1
        ok &= check(stable == len(sampled),
                    "artifacts bit-stable vs inline recomputation",
                    f"{stable}/{len(sampled)} byte-identical")

    if tmp is not None:
        tmp.cleanup()
    rate = len(jobs) / elapsed if elapsed else 0.0
    print(f"http soak: {len(jobs)} submissions in {elapsed:.1f}s "
          f"({rate:.0f} jobs/s) across {args.shards} shards")
    if not ok:
        print("SOAK FAILED", file=sys.stderr)
        return 1
    print("http soak: all contracts hold")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int,
                    default=int(os.environ.get("REPRO_SYNTH_N", "500")),
                    help="generated programs in the batch (default: "
                         "REPRO_SYNTH_N or 500)")
    ap.add_argument("--workers", type=int, default=None,
                    help="process-pool size (default: scheduler choice)")
    ap.add_argument("--max-jobs", type=int, default=None,
                    help="finished-job retention cap (default: n // 2, "
                         "so GC must fire)")
    ap.add_argument("--cache-dir",
                    help="artifact store directory (default: a fresh "
                         "temp dir — the memory-only store's LRU is "
                         "smaller than a 500-program population)")
    ap.add_argument("--quick", action="store_true",
                    help="CI mode: 60 programs, 2 workers")
    ap.add_argument("--http", action="store_true",
                    help="drive the population through the sharded "
                         "asyncio HTTP server instead of a bare "
                         "scheduler")
    ap.add_argument("--shards", type=int, default=2,
                    help="server shards in --http mode (default: 2)")
    ap.add_argument("--http-timeout", type=float, default=600.0,
                    help="seconds for the whole --http population to "
                         "finish (default: 600)")
    args = ap.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 60)
        args.workers = args.workers or 2
    max_jobs = args.max_jobs or max(8, args.n // 2)

    names = synth.pinned_slice(args.n)
    submit_names = []
    for i, name in enumerate(names):
        submit_names.append(name)
        if i % DUP_EVERY == 0:
            submit_names.append(name)     # in-flight duplicate
    n_dupes = len(submit_names) - len(names)

    if args.http:
        return http_soak(args, names, submit_names, n_dupes, max_jobs)

    print(f"soak: {len(names)} programs (+{n_dupes} duplicate "
          f"submissions), max_jobs={max_jobs}, "
          f"workers={args.workers or 'auto'}")
    metrics = ServiceMetrics()
    tmp = None
    if args.cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-soak-")
        args.cache_dir = tmp.name
    store = ArtifactStore(args.cache_dir, metrics=metrics)
    ok = True
    t0 = time.perf_counter()
    with BatchScheduler(store, metrics=metrics, workers=args.workers,
                        max_jobs=max_jobs) as sched:
        jobs = [sched.submit(AnalysisRequest(n)) for n in submit_names]
        sched.wait(jobs)
        states = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        snap = metrics.snapshot()
        counters = snap["counters"]
        elapsed = time.perf_counter() - t0

        ok &= check(states.get("done", 0) == len(jobs),
                    "all jobs completed", f"states={states}")
        ok &= check(counters.get("jobs_failed", 0) == 0, "zero failed jobs")
        ok &= check(counters.get("worker_crashes", 0) == 0,
                    "zero worker crashes")
        ok &= check(counters.get("breaker_opened", 0) == 0,
                    "circuit breaker quiescent")
        dedup = (counters.get("jobs_deduped", 0)
                 + counters.get("jobs_served_cached", 0))
        ok &= check(dedup >= n_dupes,
                    "every duplicate deduped or served cached",
                    f"{dedup} hits for {n_dupes} duplicates")

        # GC bound: submissions ran through _gc_finished_locked; one
        # more flush submit after everything finished forces a final
        # sweep, after which only max_jobs finished jobs may remain
        # (+1 for the flush job itself).
        flush = sched.submit(AnalysisRequest(names[0]))
        sched.wait([flush])
        retained = len(sched.jobs())
        ok &= check(retained <= max_jobs + 1,
                    "finished-job registry bounded",
                    f"{retained} retained <= {max_jobs}+1")
        evicted = metrics.snapshot()["counters"].get("jobs_evicted", 0)
        ok &= check(evicted > 0 or len(jobs) <= max_jobs,
                    "GC evicted past the cap", f"{evicted} evicted")

        # cached resubmit of a finished request
        pre = metrics.snapshot()["counters"].get(
            "jobs_served_cached", 0)
        again = sched.submit(AnalysisRequest(names[1]))
        sched.wait([again])
        post = metrics.snapshot()["counters"].get(
            "jobs_served_cached", 0)
        ok &= check(again.cached and post == pre + 1,
                    "finished request re-served from artifact store")

        # bit-stability: pool-computed artifacts == inline recomputation
        stride = max(1, len(names) // PARITY_SAMPLE)
        sampled = names[::stride][:PARITY_SAMPLE]
        stable = 0
        for name in sampled:
            req = AnalysisRequest(name)
            pooled = store.get(req.key())
            inline = execute_request(AnalysisRequest(name))
            if pooled is not None and \
                    canonical_json(pooled) == canonical_json(inline):
                stable += 1
        ok &= check(stable == len(sampled),
                    "artifacts bit-stable vs inline recomputation",
                    f"{stable}/{len(sampled)} byte-identical")

    if tmp is not None:
        tmp.cleanup()
    rate = len(jobs) / elapsed if elapsed else 0.0
    print(f"soak: {len(jobs)} submissions in {elapsed:.1f}s "
          f"({rate:.0f} jobs/s); "
          f"hit-rate {snap.get('cache_hit_rate', 0.0):.0%}")
    if not ok:
        print("SOAK FAILED", file=sys.stderr)
        return 1
    print("soak: all contracts hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
