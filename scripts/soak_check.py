#!/usr/bin/env python
"""Service soak gate: a 500-program generated batch through the scheduler.

Pushes ``--n`` synthetic workloads (the canonical pinned slice, so the
population covers every trait profile) through a real process-pool
:class:`BatchScheduler` with deliberate duplicate submissions, then
asserts the scale contracts the hand-built 27-workload corpus is too
small to exercise:

* every job completes; zero failures, zero worker crashes, and the
  circuit breaker never opens under sustained load (quiescence),
* in-flight dedupe fires at least once per duplicate seed, and
  re-submitting a finished request is served from the artifact store,
* the finished-job registry stays bounded by ``--max-jobs`` (GC),
* artifacts are **bit-stable**: the scheduler's pool-computed artifact
  for a sampled workload is byte-identical (canonical JSON) to an
  inline in-process recomputation.

Exit code 0 = all contracts hold.  ``--quick`` (CI gate 5) runs a
60-program slice on 2 workers; the full soak defaults to 500 programs
(override with ``--n`` or the ``REPRO_SYNTH_N`` environment knob).
"""

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service import (AnalysisRequest, ArtifactStore,  # noqa: E402
                           BatchScheduler, ServiceMetrics, canonical_json)
from repro.service.jobs import execute_request  # noqa: E402
from repro.workloads import synth  # noqa: E402

DUP_EVERY = 10          # every 10th program is submitted twice
PARITY_SAMPLE = 5       # artifacts recomputed inline for bit-stability


def check(ok: bool, label: str, detail: str = "") -> bool:
    mark = "ok  " if ok else "FAIL"
    print(f"  [{mark}] {label}" + (f"  ({detail})" if detail else ""))
    return ok


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int,
                    default=int(os.environ.get("REPRO_SYNTH_N", "500")),
                    help="generated programs in the batch (default: "
                         "REPRO_SYNTH_N or 500)")
    ap.add_argument("--workers", type=int, default=None,
                    help="process-pool size (default: scheduler choice)")
    ap.add_argument("--max-jobs", type=int, default=None,
                    help="finished-job retention cap (default: n // 2, "
                         "so GC must fire)")
    ap.add_argument("--cache-dir",
                    help="artifact store directory (default: a fresh "
                         "temp dir — the memory-only store's LRU is "
                         "smaller than a 500-program population)")
    ap.add_argument("--quick", action="store_true",
                    help="CI mode: 60 programs, 2 workers")
    args = ap.parse_args(argv)
    if args.quick:
        args.n = min(args.n, 60)
        args.workers = args.workers or 2
    max_jobs = args.max_jobs or max(8, args.n // 2)

    names = synth.pinned_slice(args.n)
    submit_names = []
    for i, name in enumerate(names):
        submit_names.append(name)
        if i % DUP_EVERY == 0:
            submit_names.append(name)     # in-flight duplicate
    n_dupes = len(submit_names) - len(names)

    print(f"soak: {len(names)} programs (+{n_dupes} duplicate "
          f"submissions), max_jobs={max_jobs}, "
          f"workers={args.workers or 'auto'}")
    metrics = ServiceMetrics()
    tmp = None
    if args.cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-soak-")
        args.cache_dir = tmp.name
    store = ArtifactStore(args.cache_dir, metrics=metrics)
    ok = True
    t0 = time.perf_counter()
    with BatchScheduler(store, metrics=metrics, workers=args.workers,
                        max_jobs=max_jobs) as sched:
        jobs = [sched.submit(AnalysisRequest(n)) for n in submit_names]
        sched.wait(jobs)
        states = {}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        snap = metrics.snapshot()
        counters = snap["counters"]
        elapsed = time.perf_counter() - t0

        ok &= check(states.get("done", 0) == len(jobs),
                    "all jobs completed", f"states={states}")
        ok &= check(counters.get("jobs_failed", 0) == 0, "zero failed jobs")
        ok &= check(counters.get("worker_crashes", 0) == 0,
                    "zero worker crashes")
        ok &= check(counters.get("breaker_opened", 0) == 0,
                    "circuit breaker quiescent")
        dedup = (counters.get("jobs_deduped", 0)
                 + counters.get("jobs_served_cached", 0))
        ok &= check(dedup >= n_dupes,
                    "every duplicate deduped or served cached",
                    f"{dedup} hits for {n_dupes} duplicates")

        # GC bound: submissions ran through _gc_finished_locked; one
        # more flush submit after everything finished forces a final
        # sweep, after which only max_jobs finished jobs may remain
        # (+1 for the flush job itself).
        flush = sched.submit(AnalysisRequest(names[0]))
        sched.wait([flush])
        retained = len(sched.jobs())
        ok &= check(retained <= max_jobs + 1,
                    "finished-job registry bounded",
                    f"{retained} retained <= {max_jobs}+1")
        evicted = metrics.snapshot()["counters"].get("jobs_evicted", 0)
        ok &= check(evicted > 0 or len(jobs) <= max_jobs,
                    "GC evicted past the cap", f"{evicted} evicted")

        # cached resubmit of a finished request
        pre = metrics.snapshot()["counters"].get(
            "jobs_served_cached", 0)
        again = sched.submit(AnalysisRequest(names[1]))
        sched.wait([again])
        post = metrics.snapshot()["counters"].get(
            "jobs_served_cached", 0)
        ok &= check(again.cached and post == pre + 1,
                    "finished request re-served from artifact store")

        # bit-stability: pool-computed artifacts == inline recomputation
        stride = max(1, len(names) // PARITY_SAMPLE)
        sampled = names[::stride][:PARITY_SAMPLE]
        stable = 0
        for name in sampled:
            req = AnalysisRequest(name)
            pooled = store.get(req.key())
            inline = execute_request(AnalysisRequest(name))
            if pooled is not None and \
                    canonical_json(pooled) == canonical_json(inline):
                stable += 1
        ok &= check(stable == len(sampled),
                    "artifacts bit-stable vs inline recomputation",
                    f"{stable}/{len(sampled)} byte-identical")

    if tmp is not None:
        tmp.cleanup()
    rate = len(jobs) / elapsed if elapsed else 0.0
    print(f"soak: {len(jobs)} submissions in {elapsed:.1f}s "
          f"({rate:.0f} jobs/s); "
          f"hit-rate {snap.get('cache_hit_rate', 0.0):.0%}")
    if not ok:
        print("SOAK FAILED", file=sys.stderr)
        return 1
    print("soak: all contracts hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
