#!/usr/bin/env bash
# The one-command CI gate: everything a change must pass before merging.
#
#   bash scripts/ci_check.sh
#
# Runs, in order:
#   1. the tier-1 pytest suite (correctness, soundness fuzzing,
#      service determinism, observability contracts),
#   2. the performance gates (ops/sec vs the committed
#      BENCH_engine.json, BENCH_tools.json, BENCH_parallel.json, and
#      BENCH_incremental.json baselines; also enforces the compiled
#      engine's 2x-over-tree contract, the transpiled engine's
#      10x-over-compiled contract, the instrumented fast path's
#      3x-over-tree-observer contract, warm incremental re-analysis's
#      10x-over-cold-pipeline contract with bit parity, and — on hosts
#      with >= 4 free cores — real parallel execution's
#      1.5x-at-4-workers contract with bit-parity on every host),
#   3. the end-to-end HTTP service smoke test (submit / poll /
#      artifact / cache-repeat / metrics),
#   4. the fault-injected serve smoke (seeded worker crashes retried,
#      hung job killed by its deadline, service stays healthy),
#   5. the generated-corpus gates: a pinned 50-seed synth parity slice
#      (4-way engine/parallel bit-parity + determinism + lazy
#      registration) and the quick service soak (dedupe, GC bounds,
#      breaker quiescence, bit-stable artifacts).  REPRO_SYNTH_N is the
#      scale knob — the tier-1 default is 200; soak runs use 500+
#      (e.g. `REPRO_SYNTH_N=500 python scripts/soak_check.py`),
#   6. the incremental-analysis gate (a one-procedure edit on the
#      deepest call graphs invalidates exactly its dependency cone,
#      with warm/cold bit parity and a no-op hot re-run),
#   7. the scale-out service gates: the BENCH_service.json concurrency
#      contracts (sharded warm throughput >= 2x the single-pool server
#      at 16 clients; a cold 64-client same-key storm across two
#      server processes computes its artifact exactly once with
#      bit-identical responses) plus the quick HTTP soak driving the
#      synth population through the sharded asyncio server.
#
# Any failure stops the script with a nonzero exit.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== [1/7] tier-1 test suite =="
python -m pytest -x -q

echo "== [2/7] performance gates (engine + transpiled + tools + parallel + incremental) =="
python scripts/perf_check.py
python scripts/perf_check.py --only transpiled
python scripts/perf_check.py --only parallel
python scripts/perf_check.py --only incremental

echo "== [3/7] service smoke test =="
python scripts/serve_smoke.py

echo "== [4/7] fault-injected service smoke =="
python scripts/serve_smoke.py --inject "crash=0.5,seed=1"

echo "== [5/7] generated-corpus gates (synth parity slice + quick soak) =="
REPRO_SYNTH_N=50 python -m pytest tests/test_synth_corpus.py -q
python scripts/soak_check.py --quick

echo "== [6/7] incremental-analysis gate (cone invalidation + parity) =="
python scripts/incr_check.py

echo "== [7/7] scale-out service gates (sharded throughput + single-flight storm + HTTP soak) =="
python scripts/perf_check.py --only service
python scripts/soak_check.py --quick --http

echo "== ci_check: all gates passed =="
