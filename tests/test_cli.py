"""The command-line interface."""

import pytest

from repro.cli import main


def test_run_workload(capsys):
    assert main(["run", "ora"]) == 0
    out = capsys.readouterr().out
    assert out.strip(), "ora prints its integrals"


def test_run_file(tmp_path, capsys):
    f = tmp_path / "p.f"
    f.write_text("""
      PROGRAM t
      PRINT *, 2.0 + 3.0
      END
""")
    assert main(["run", str(f)]) == 0
    assert "5.0" in capsys.readouterr().out


def test_run_with_inputs(tmp_path, capsys):
    f = tmp_path / "p.f"
    f.write_text("""
      PROGRAM t
      READ *, x
      PRINT *, x * 2.0
      END
""")
    assert main(["run", str(f), "--inputs", "21"]) == 0
    assert "42.0" in capsys.readouterr().out


def test_parallelize_output(capsys):
    assert main(["parallelize", "embar", "--annotate"]) == 0
    out = capsys.readouterr().out
    assert "embar/100: PARALLEL" in out
    assert "REDUCTION(+:" in out


def test_parallelize_ablation_flags(capsys):
    assert main(["parallelize", "embar", "--no-reductions"]) == 0
    out = capsys.readouterr().out
    assert "embar/100: sequential" in out


def test_explore_session(capsys):
    assert main(["explore", "mdg", "--assertions", "--codeview"]) == 0
    out = capsys.readouterr().out
    assert "Parallelization Guru" in out
    assert "interf/1000" in out
    assert "accepted" in out
    assert "legend" in out


def test_slice_command(capsys):
    assert main(["slice", "mdg", "interf/1000", "rl",
                 "--region-restricted"]) == 0
    out = capsys.readouterr().out
    assert "slice:" in out
    assert "interf" in out


def test_advise_command(capsys):
    assert main(["advise", "hydro"]) == 0
    out = capsys.readouterr().out
    assert "advisor" in out or "[" in out


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["explore", "ora", "--machine", "cray"])


def test_unknown_variable_rejected():
    with pytest.raises(SystemExit):
        main(["slice", "mdg", "interf/1000", "nosuchvar"])


def test_compile_command(tmp_path, capsys):
    out_file = tmp_path / "ora.py"
    assert main(["compile", "ora", "-o", str(out_file)]) == 0
    ns = {}
    exec(compile(out_file.read_text(), str(out_file), "exec"), ns)
    result = ns["run"]([])
    assert result and isinstance(result[0], float)


def test_unknown_target_lists_workloads(capsys):
    """`repro run nosuch.f` must explain itself, not FileNotFoundError."""
    with pytest.raises(SystemExit) as err:
        main(["run", "no-such-file.f"])
    assert "mdg" in str(err.value)
    assert "neither a file nor a corpus workload" in str(err.value)


def test_batch_command_sequential(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["batch", "ora", "track", "--sequential",
                 "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "ora" in out and "computed" in out and "speedup" in out
    # second run over the same cache dir is served from disk
    assert main(["batch", "ora", "track", "--sequential",
                 "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "cached" in out and "computed" not in out


def test_batch_command_unknown_name():
    with pytest.raises(SystemExit) as err:
        main(["batch", "nope"])
    assert "unknown workload" in str(err.value)


def test_batch_command_json(capsys):
    import json
    assert main(["batch", "ora", "--sequential", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["ora"]["execution"]["speedup"] > 1.0
