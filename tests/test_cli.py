"""The command-line interface."""

import pytest

from repro.cli import main


def test_run_workload(capsys):
    assert main(["run", "ora"]) == 0
    out = capsys.readouterr().out
    assert out.strip(), "ora prints its integrals"


def test_run_file(tmp_path, capsys):
    f = tmp_path / "p.f"
    f.write_text("""
      PROGRAM t
      PRINT *, 2.0 + 3.0
      END
""")
    assert main(["run", str(f)]) == 0
    assert "5.0" in capsys.readouterr().out


def test_run_with_inputs(tmp_path, capsys):
    f = tmp_path / "p.f"
    f.write_text("""
      PROGRAM t
      READ *, x
      PRINT *, x * 2.0
      END
""")
    assert main(["run", str(f), "--inputs", "21"]) == 0
    assert "42.0" in capsys.readouterr().out


def test_parallelize_output(capsys):
    assert main(["parallelize", "embar", "--annotate"]) == 0
    out = capsys.readouterr().out
    assert "embar/100: PARALLEL" in out
    assert "REDUCTION(+:" in out


def test_parallelize_ablation_flags(capsys):
    assert main(["parallelize", "embar", "--no-reductions"]) == 0
    out = capsys.readouterr().out
    assert "embar/100: sequential" in out


def test_explore_session(capsys):
    assert main(["explore", "mdg", "--assertions", "--codeview"]) == 0
    out = capsys.readouterr().out
    assert "Parallelization Guru" in out
    assert "interf/1000" in out
    assert "accepted" in out
    assert "legend" in out


def test_profile_command_reports_engine(capsys):
    assert main(["profile", "mdg"]) == 0
    cap = capsys.readouterr()
    assert "interf/1000" in cap.out
    assert "coverage" in cap.out
    assert "engine: compiled/profile" in cap.err


def test_profile_command_tree_engine(capsys):
    assert main(["profile", "ora", "--engine", "tree"]) == 0
    assert "engine: tree" in capsys.readouterr().err


def test_dyndep_command_reports_engine_and_deps(capsys):
    assert main(["dyndep", "hydro"]) == 0
    cap = capsys.readouterr()
    assert "loop-carried flow dependence" in cap.out
    assert "write line" in cap.out
    assert "engine: compiled/dyndep" in cap.err
    assert "sampled" in cap.err


def test_dyndep_command_stride_and_tree(capsys):
    assert main(["dyndep", "mdg", "--engine", "tree", "--stride", "2"]) == 0
    cap = capsys.readouterr()
    assert "engine: tree" in cap.err
    assert "skipped" in cap.err


def test_slice_command(capsys):
    assert main(["slice", "mdg", "interf/1000", "rl",
                 "--region-restricted"]) == 0
    out = capsys.readouterr().out
    assert "slice:" in out
    assert "interf" in out


def test_advise_command(capsys):
    assert main(["advise", "hydro"]) == 0
    out = capsys.readouterr().out
    assert "advisor" in out or "[" in out


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["explore", "ora", "--machine", "cray"])


def test_unknown_variable_rejected():
    with pytest.raises(SystemExit):
        main(["slice", "mdg", "interf/1000", "nosuchvar"])


def test_compile_command(tmp_path, capsys):
    out_file = tmp_path / "ora.py"
    assert main(["compile", "ora", "-o", str(out_file)]) == 0
    ns = {}
    exec(compile(out_file.read_text(), str(out_file), "exec"), ns)
    result = ns["run"]([])
    assert result and isinstance(result[0], float)


def test_unknown_target_lists_workloads(capsys):
    """`repro run nosuch.f` must explain itself, not FileNotFoundError."""
    with pytest.raises(SystemExit) as err:
        main(["run", "no-such-file.f"])
    assert "mdg" in str(err.value)
    assert "neither a file nor a corpus workload" in str(err.value)


def test_batch_command_sequential(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["batch", "ora", "track", "--sequential",
                 "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "ora" in out and "computed" in out and "speedup" in out
    # second run over the same cache dir is served from disk
    assert main(["batch", "ora", "track", "--sequential",
                 "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "cached" in out and "computed" not in out


def test_batch_command_unknown_name():
    with pytest.raises(SystemExit) as err:
        main(["batch", "nope"])
    assert "unknown workload" in str(err.value)


def test_batch_command_json(capsys):
    import json
    assert main(["batch", "ora", "--sequential", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["ora"]["execution"]["speedup"] > 1.0


def test_batch_exit_code_nonzero_on_job_failure(capsys, monkeypatch):
    """Regression: a failed job must surface as a nonzero exit and a
    FAILED line naming the error, while surviving jobs still report."""
    from repro.service import jobs as jobs_mod
    real = jobs_mod.execute_request

    def flaky(request):
        if request.describe() == "track":
            raise RuntimeError("injected analysis failure")
        return real(request)

    monkeypatch.setattr("repro.service.scheduler.execute_request", flaky)
    rc = main(["batch", "ora", "track", "--sequential"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "FAILED" in captured.err
    assert "injected analysis failure" in captured.err
    assert "ora" in captured.out and "speedup" in captured.out


def test_batch_failure_keyed_on_job_state_not_artifact(capsys,
                                                       monkeypatch):
    """Regression for the exit-code bug: a *done* job whose artifact was
    merely evicted from the memory-only LRU must not flip the exit code
    to failure (that conflated cache pressure with analysis errors)."""
    from repro.service.artifacts import ArtifactStore
    real_init = ArtifactStore.__init__

    def tiny_lru(self, root=None, *, memory_capacity=128, **kw):
        real_init(self, root, memory_capacity=1, **kw)

    monkeypatch.setattr(ArtifactStore, "__init__", tiny_lru)
    rc = main(["batch", "ora", "track", "--sequential"])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    assert "FAILED" not in captured.err
    assert "evicted" in captured.err          # reported, but not fatal


def test_batch_trace_writes_chrome_json(tmp_path, capsys):
    import json
    trace_file = tmp_path / "batch.json"
    assert main(["batch", "ora", "--sequential",
                 "--trace", str(trace_file)]) == 0
    doc = json.loads(trace_file.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert {"submit", "job", "execute_request"} <= names
    assert "spans" in capsys.readouterr().err


def test_trace_command_tree_and_chrome(tmp_path, capsys):
    import json
    assert main(["trace", "ora"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("execute_request")
    assert "phase totals" in out
    assert "instrument.dyndep" in out and "guru" in out
    out_file = tmp_path / "trace.json"
    assert main(["trace", "mdg", "--export", "chrome",
                 "-o", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert {"parse", "build", "instrument.profile", "instrument.dyndep",
            "guru", "slice"} <= names


def test_trace_command_unknown_target():
    with pytest.raises(SystemExit) as err:
        main(["trace", "no-such-file.f"])
    assert "neither a file nor a corpus workload" in str(err.value)
