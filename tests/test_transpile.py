"""The Python backend: unit behaviours + differential testing against the
interpreter (a second, independent implementation of the semantics)."""

import pytest
from hypothesis import given, settings

from repro.ir import build_program
from repro.runtime import run_program
from repro.runtime.transpile import compile_program, transpile_to_python


def both(src, inputs=()):
    prog = build_program(src)
    interp = run_program(prog, inputs).outputs
    comp = compile_program(prog)(inputs)
    return interp, comp


def test_arithmetic_and_control():
    interp, comp = both("""
      PROGRAM t
      s = 0.0
      DO 10 i = 1, 7, 2
        IF (i .GT. 3) THEN
          s = s + i * 2
        ELSE
          s = s - i
        ENDIF
10    CONTINUE
      PRINT *, s, i
      END
""")
    assert interp == comp


def test_goto_cycle_semantics():
    interp, comp = both("""
      PROGRAM t
      s = 0.0
      DO 20 i = 1, 4
        DO 10 j = 1, 4
          IF (j .EQ. 3) GO TO 20
          s = s + 1.0
10      CONTINUE
        s = s + 100.0
20    CONTINUE
      PRINT *, s
      END
""")
    assert interp == comp


def test_common_aliasing_and_element_actuals():
    interp, comp = both("""
      PROGRAM t
      COMMON /b/ x(6), y
      CALL fill(x(3), 2)
      y = x(4)
      PRINT *, x(3), y
      END
      SUBROUTINE fill(q, n)
      DIMENSION q(*)
      DO 10 j = 1, n
        q(j) = j * 10.0
10    CONTINUE
      END
""")
    assert interp == comp


def test_integer_division_matches():
    interp, comp = both("""
      PROGRAM t
      INTEGER a, b
      a = -9
      b = 2
      PRINT *, a / b, 9 / 2
      END
""")
    assert interp == comp == [-4, 4]


def test_stop_and_return():
    interp, comp = both("""
      PROGRAM t
      CALL f
      PRINT *, 1.0
      STOP
      PRINT *, 2.0
      END
      SUBROUTINE f
      RETURN
      END
""")
    assert interp == comp == [1.0]


def test_reads():
    interp, comp = both("""
      PROGRAM t
      DIMENSION a(5)
      READ *, n
      READ *, a(2)
      PRINT *, n, a(2)
      END
""", inputs=[3.0, 7.5])
    assert interp == comp


def test_transpiled_source_is_plain_python(simple_program):
    src = transpile_to_python(simple_program)
    compile(src, "<t>", "exec")               # syntactically valid
    assert "def run(" in src
    assert "numpy" not in src                 # self-contained


@pytest.mark.parametrize("name", [
    "mdg", "hydro", "hydro2d", "wave5", "bdna", "ora", "doduc", "embar",
    "cgm", "trfd", "qcd", "track", "dyfesm", "spec77", "tomcatv", "ear",
    "su2cor", "swm256", "mdljdp2", "nasa7", "mgrid", "ocean", "adm",
    "appbt",
])
def test_workloads_transpile_equivalently(name):
    """Differential test: on every corpus program the compiled backend and
    the interpreter agree exactly."""
    from repro.workloads import get
    w = get(name)
    prog = w.build()
    interp = run_program(prog, w.inputs).outputs
    comp = compile_program(prog)(w.inputs)
    assert comp == pytest.approx(interp)
