"""Slicing: SSA-based program/data/control slices, context sensitivity,
slice summaries, pruning."""

import pytest

from repro.ir import build_program
from repro.ir.statements import AssignStmt
from repro.slicing import Slicer

FIG33_SRC = """
      PROGRAM main
      COMMON /gh/ g, h
      g = 0.0
      h = 0.0
      CALL p
      CALL q
      END

      SUBROUTINE p
      COMMON /gh/ g, h
      g = 1.0
      CALL r(g)
      x = g
      PRINT *, x
      END

      SUBROUTINE q
      COMMON /gh/ g, h
      h = 2.0
      CALL r(h)
      END

      SUBROUTINE r(f)
      f = f + 1.0
      END
"""


@pytest.fixture(scope="module")
def fig33():
    prog = build_program(FIG33_SRC, "fig33")
    return prog, Slicer(prog)


def assign_at(prog, proc, line):
    p = prog.procedure(proc)
    for s in p.statements():
        if s.line == line:
            return s
    raise AssertionError(f"no statement at {proc}:{line}")


def test_context_sensitive_slice(fig33):
    """Fig 3-3 / section 3.5.1: the slice of G's use in P includes R and
    P's assignment but never Q's assignment to H."""
    prog, slicer = fig33
    stmt = assign_at(prog, "p", 14)      # x = g
    res = slicer.slice_of_use(stmt, prog.procedure("p").symbols.lookup("g"),
                              kind="data")
    lines = res.lines()
    assert ("p", 12) in lines            # g = 1.0
    assert ("r", 25) in lines            # f = f + 1.0
    assert ("q", 20) not in lines        # h = 2.0 must NOT leak in


def test_cslice_with_calling_context(fig33):
    """Section 3.5.3: slicing r's use of f under the Q call stack."""
    prog, slicer = fig33
    rstmt = assign_at(prog, "r", 25)
    fsym = prog.procedure("r").symbols.lookup("f")
    call_q = [c for c in prog.procedure("q").call_sites()][0]
    res = slicer.slice_of_value(slicer.issa.use_at(rstmt, fsym),
                                kind="data", context=[call_q])
    assert ("q", 20) in res.lines()
    assert ("p", 12) not in res.lines()


def test_exposed_formal_reported_without_context(fig33):
    prog, slicer = fig33
    rstmt = assign_at(prog, "r", 25)
    fsym = prog.procedure("r").symbols.lookup("f")
    res = slicer.slice_of_use(rstmt, fsym, kind="data")
    assert len(res.terminals) == 1       # the formal phi is exposed


LOOP_SRC = """
      PROGRAM t
      DIMENSION a(50), b(50)
      INTEGER n, kc
      n = 40
      c = 2.5
      DO 100 i = 1, n
        kc = 0
        IF (b(i) .GT. c) kc = kc + 1
        IF (kc .EQ. 0) THEN
          a(i) = b(i) * 2.0
        ENDIF
100   CONTINUE
      PRINT *, a(3)
      END
"""


@pytest.fixture(scope="module")
def loopy():
    prog = build_program(LOOP_SRC, "loopy")
    return prog, Slicer(prog)


def test_program_slice_includes_control_of_defs(loopy):
    """kc's value at the IF depends on the conditional increment; the
    program slice must include the guarding IF of that definition."""
    prog, slicer = loopy
    stmt = assign_at(prog, "t", 10)      # IF (kc .EQ. 0) THEN
    kcsym = prog.procedure("t").symbols.lookup("kc")
    res = slicer.slice_of_use(stmt, kcsym, kind="program")
    lines = {ln for _, ln in res.lines()}
    assert 8 in lines                    # kc = 0
    assert 9 in lines                    # IF (...) kc = kc + 1
    # data slice omits the guard's own condition inputs (b, c defs)
    data = slicer.slice_of_use(stmt, kcsym, kind="data")
    assert data.stmt_ids <= res.stmt_ids


def test_data_slice_smaller_than_program_slice(loopy):
    prog, slicer = loopy
    stmt = assign_at(prog, "t", 11)
    kcsym = prog.procedure("t").symbols.lookup("kc")
    data = slicer.slice_of_use(stmt, kcsym, kind="data")
    program = slicer.slice_of_use(stmt, kcsym, kind="program")
    assert data.stmt_ids <= program.stmt_ids


def test_control_slice(loopy):
    """Control slice = controlling statements + slices of their
    conditions (section 3.2.1)."""
    prog, slicer = loopy
    stmt = assign_at(prog, "t", 11)
    res = slicer.control_slice(stmt)
    lines = {ln for _, ln in res.lines()}
    assert 10 in lines                   # the IF itself
    assert 8 in lines                    # kc = 0 feeding the condition
    assert 9 in lines                    # conditional increment


def test_loop_phi_recurrence_converges(loopy):
    """kc's conditional increment forms an SSA cycle; the SCC collapse
    must terminate and include both definitions."""
    prog, slicer = loopy
    stmt = assign_at(prog, "t", 10)      # IF (kc .EQ. 0) ...
    kcsym = prog.procedure("t").symbols.lookup("kc")
    res = slicer.slice_of_use(stmt, kcsym, kind="data")
    lines = {ln for _, ln in res.lines()}
    assert 8 in lines and 9 in lines


def test_array_restricted_pruning(loopy):
    prog, slicer = loopy
    stmt = assign_at(prog, "t", 11)
    bsym = prog.procedure("t").symbols.lookup("b")
    full = slicer.slice_of_use(stmt, bsym, kind="program")
    pruned = slicer.slice_of_use(stmt, bsym, kind="program",
                                 array_restricted=True)
    assert pruned.stmt_ids <= full.stmt_ids


def test_region_restricted_pruning(loopy):
    prog, slicer = loopy
    loop = prog.loop("t/100")
    stmt = assign_at(prog, "t", 11)
    kcsym = prog.procedure("t").symbols.lookup("kc")
    full = slicer.slice_of_use(stmt, kcsym, kind="program")
    cr = slicer.slice_of_use(stmt, kcsym, kind="program", region_loop=loop)
    region = slicer.region_of_loop(loop)
    assert cr.stmt_ids <= full.stmt_ids
    assert all(sid in region for sid in cr.stmt_ids)


def test_region_includes_callees(fig33):
    prog, slicer = fig33
    # build a loop-bearing program with a call
    prog2 = build_program("""
      PROGRAM t
      DIMENSION a(10)
      DO 10 i = 1, 10
        CALL f(a, i)
10    CONTINUE
      END
      SUBROUTINE f(q, i)
      DIMENSION q(*)
      q(i) = i * 1.0
      END
""")
    s2 = Slicer(prog2)
    region = s2.region_of_loop(prog2.loop("t/10"))
    callee_lines = {prog2.statement(sid).proc_name for sid in region
                    if sid in prog2._stmt_index}
    assert "f" in callee_lines


def test_memoization_reuses_summaries(loopy):
    prog, slicer = loopy
    stmt = assign_at(prog, "t", 11)
    bsym = prog.procedure("t").symbols.lookup("b")
    r1 = slicer.slice_of_use(stmt, bsym, kind="program")
    before = len(slicer._memo)
    r2 = slicer.slice_of_use(stmt, bsym, kind="program")
    assert len(slicer._memo) == before
    assert r1.stmt_ids == r2.stmt_ids


def test_mdg_slice_matches_fig_4_3(mdg_program):
    """The Explorer's slice for RL in interf/1000 highlights exactly the
    KC / RS / RL machinery (paper Fig 4-3)."""
    prog = mdg_program
    slicer = Slicer(prog)
    interf = prog.procedure("interf")
    loop = prog.loop("interf/1000")
    rl = interf.symbols.lookup("rl")
    # find the read of rl inside loop 1140: gg = rl(k-5) * 0.125
    target = None
    for s in loop.body.walk():
        if isinstance(s, AssignStmt) and "rl" in repr(s.value):
            target = s
            break
    assert target is not None
    res = slicer.slice_of_use(target, rl, kind="program", region_loop=loop)
    procs = {pn for pn, _ in res.lines()}
    assert "interf" in procs
    # control slice shows the kc conditions
    ctrl = slicer.control_slice(target, region_loop=loop)
    assert ctrl.line_count() > 0
