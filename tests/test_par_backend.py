"""The real multiprocessor backend (repro.runtime.par_backend).

The contract under test: executing a program's DOALL plan on actual
worker processes is **bit-identical** to the sequential transpiled
engine — same outputs, same COMMON memory, same op count, same budget
abort decision and message — at every worker count, on every corpus
workload.  Plus the dispatch protocol edges: declines, dispatch caps,
broken-pool fallback, spawn start method, and the span taxonomy.
"""

import os

import pytest

from repro.ir import build_program
from repro.obs.tracer import Tracer, activate
from repro.parallelize import Parallelizer
from repro.runtime import run_program
from repro.runtime.interpreter import (OpsBudgetExceeded,
                                       RuntimeErrorInProgram)
from repro.runtime.machine import ALPHASERVER_8400
from repro.runtime.par_backend import ParallelRunner, analyze_offloads
from repro.runtime.parallel_exec import (ParallelExecutionResult,
                                         ParallelExecutor)
from repro.workloads import ALL

CORPUS = sorted(ALL)

_cache = {}


def _program(name):
    """Build each workload once: plans key on stmt identity."""
    if name not in _cache:
        w = ALL[name]
        prog = build_program(w.source, w.name)
        plan = Parallelizer(prog,
                            assertions=w.user_assertions).plan()
        _cache[name] = (prog, plan, w.inputs)
    return _cache[name]


def _seq_reference(prog, inputs, **kwargs):
    interp = run_program(prog, inputs, engine="transpiled", **kwargs)
    commons = {name: list(buf.data)
               for name, buf in interp.commons.items()}
    return interp.outputs, interp.ops, commons


# -- whole-corpus bit-parity --------------------------------------------------

@pytest.mark.parametrize("name", CORPUS)
def test_corpus_parity_across_worker_counts(name):
    """Outputs, op counts, and COMMON memory must match the sequential
    transpiled engine exactly at 1, 2, and 4 workers.

    workers=1 runs every dispatch through the full kernel + merge
    protocol (single chunk, in-process) with no cap.  At 2 and 4
    workers the chunks cross real process boundaries; dispatches are
    capped there because per-dispatch pipe round-trips on the heavy
    workloads (mdg ~7700 dispatches) would dominate the suite — the
    capped tail falls back to the generated sequential drivers, whose
    parity the cap itself also asserts.
    """
    prog, plan, inputs = _program(name)
    out0, ops0, cm0 = _seq_reference(prog, inputs)
    for workers, cap in ((1, None), (2, 400), (4, 150)):
        r = ParallelRunner(prog, plan, workers=workers,
                           max_dispatches=cap).execute(inputs)
        assert r.outputs == out0, f"{name} w={workers}: outputs diverge"
        assert r.ops == ops0, (
            f"{name} w={workers}: op drift {r.ops} != {ops0}")
        assert r.commons == cm0, f"{name} w={workers}: COMMON diverges"
        if workers == 1 and r.offloaded:
            # the parallel protocol actually ran, this is not a
            # vacuous pass through the sequential fallback
            assert r.dispatches > 0, f"{name}: nothing dispatched"


@pytest.mark.parametrize("name", CORPUS)
def test_corpus_offload_coverage(name):
    """Every parallel loop either offloads or is rejected for one of the
    known structural reasons (calls, formal-array writes, conditionally
    reached inner drivers, guarded min/max reductions)."""
    prog, plan, _ = _program(name)
    offloads, rejects = analyze_offloads(prog, plan)
    offloaded_ids = {o.loop.stmt_id for o in offloads}
    for loop in plan.parallel_loops():
        assert loop.stmt_id in offloaded_ids or loop.name in rejects, (
            f"{name}: {loop.name} neither offloaded nor rejected")
    known = ("loop contains a call", "formal array",
             "conditionally reached", "read outside its update")
    for loop, why in rejects.items():
        assert any(k in why for k in known), (
            f"{name}: unexpected reject for {loop}: {why}")


def test_merge_is_deterministic_across_repeats():
    """Reduction-heavy workload, repeated at 4 workers: bit-equal."""
    prog, plan, inputs = _program("mdljdp2")
    runs = [ParallelRunner(prog, plan, workers=4).execute(inputs)
            for _ in range(3)]
    assert runs[0].outputs == runs[1].outputs == runs[2].outputs
    assert runs[0].commons == runs[1].commons == runs[2].commons
    assert runs[0].ops == runs[1].ops == runs[2].ops


def test_inline_chunks_match_pool_chunks():
    prog, plan, inputs = _program("tomcatv")
    pool = ParallelRunner(prog, plan, workers=2).execute(inputs)
    inline = ParallelRunner(prog, plan, workers=2,
                            inline=True).execute(inputs)
    assert inline.outputs == pool.outputs
    assert inline.ops == pool.ops
    assert inline.commons == pool.commons


def test_spawn_start_method_parity():
    """Module shipping keeps the pool spawn-safe (no fork inheritance)."""
    prog, plan, inputs = _program("ora")
    out0, ops0, cm0 = _seq_reference(prog, inputs)
    r = ParallelRunner(prog, plan, workers=2,
                       start_method="spawn").execute(inputs)
    assert (r.outputs, r.ops, r.commons) == (out0, ops0, cm0)


# -- dispatch protocol edges --------------------------------------------------

def test_runner_rejects_bad_worker_count():
    prog, plan, _ = _program("ora")
    with pytest.raises(ValueError):
        ParallelRunner(prog, plan, workers=0)


def test_min_iters_declines_small_loops():
    prog, plan, inputs = _program("tomcatv")
    r = ParallelRunner(prog, plan, workers=2,
                       min_iters=10 ** 9).execute(inputs)
    out0, ops0, cm0 = _seq_reference(prog, inputs)
    assert r.dispatches == 0 and r.declined > 0
    assert (r.outputs, r.ops, r.commons) == (out0, ops0, cm0)


def test_max_dispatches_caps_then_falls_back_sequential():
    prog, plan, inputs = _program("arc3d")
    r = ParallelRunner(prog, plan, workers=2,
                       max_dispatches=3).execute(inputs)
    out0, ops0, cm0 = _seq_reference(prog, inputs)
    assert r.dispatches == 3 and r.declined > 0
    assert (r.outputs, r.ops, r.commons) == (out0, ops0, cm0)


def test_budget_abort_decision_and_message_match_sequential():
    """The abort *decision* and the exception text (which carries only
    max_ops) must match the sequential engine at any worker count."""
    prog, plan, inputs = _program("tomcatv")
    _, ops0, _ = _seq_reference(prog, inputs)
    max_ops = ops0 // 2
    with pytest.raises(OpsBudgetExceeded) as seq_exc:
        run_program(prog, inputs, engine="transpiled", max_ops=max_ops)
    for workers in (1, 2):
        runner = ParallelRunner(prog, plan, workers=workers)
        with pytest.raises(OpsBudgetExceeded) as par_exc:
            runner.execute(inputs, max_ops=max_ops)
        assert str(par_exc.value) == str(seq_exc.value)


def test_budget_completion_parity_just_above_threshold():
    prog, plan, inputs = _program("ora")
    _, ops0, _ = _seq_reference(prog, inputs)
    r = ParallelRunner(prog, plan, workers=2).execute(
        inputs, max_ops=ops0)
    assert r.ops == ops0


ERR_SRC = """
      PROGRAM perr
      COMMON /g/ a(64)
      INTEGER k, m
      m = 1
      DO 10 i = 1, 64
        k = i / (m - m)
        a(i) = k * 1.0
10    CONTINUE
      PRINT *, a(1)
      END
"""


def test_runtime_error_in_kernel_propagates_with_same_message():
    prog = build_program(ERR_SRC, "perr")
    plan = Parallelizer(prog).plan()
    offloads, _ = analyze_offloads(prog, plan)
    assert offloads, "error loop must actually offload"
    with pytest.raises(RuntimeErrorInProgram) as seq_exc:
        run_program(prog, engine="transpiled")
    for workers in (1, 2):
        with pytest.raises(RuntimeErrorInProgram) as par_exc:
            ParallelRunner(prog, plan, workers=workers).execute(())
        assert str(par_exc.value) == str(seq_exc.value)


# -- observability ------------------------------------------------------------

def test_parallel_spans_are_emitted_with_tags():
    prog, plan, inputs = _program("tomcatv")
    tracer = Tracer()
    with activate(tracer):
        ParallelRunner(prog, plan, workers=2).execute(inputs)
    names = [s.name for s in tracer.finished_spans()]
    assert "parallel.exec" in names and "parallel.merge" in names
    execs = [s for s in tracer.finished_spans()
             if s.name == "parallel.exec"]
    assert all(s.tags["workers"] >= 1 and s.tags["iters"] >= 1
               and s.tags["loop"] for s in execs)
    assert "parallel.exec" in __import__(
        "repro.obs.export", fromlist=["PHASES"]).PHASES


# -- zero-op guards (satellite: simulated result arithmetic) ------------------

def test_simulated_result_guards_divide_by_zero():
    res = ParallelExecutionResult(ALPHASERVER_8400)
    assert res.speedup == 1.0
    assert res.coverage == 0.0
    assert res.granularity_ms() == 0.0


EMPTY_SRC = """
      PROGRAM nul
      END
"""


def test_zero_work_program_end_to_end():
    """A program with no loops and no output: the simulator's ratios
    stay defined and the real backend runs it without dispatching."""
    prog = build_program(EMPTY_SRC, "nul")
    plan = Parallelizer(prog).plan()
    ex = ParallelExecutor(prog, plan, ALPHASERVER_8400,
                          engine="transpiled")
    sim = ex.run()
    assert sim.speedup >= 1.0 and sim.coverage == 0.0
    r = ParallelRunner(prog, plan, workers=2).execute(())
    out0, ops0, cm0 = _seq_reference(prog, ())
    assert (r.outputs, r.ops, r.commons) == (out0, ops0, cm0)
    assert r.dispatches == 0


# -- the executor bridge ------------------------------------------------------

def test_executor_execute_matches_account_shape():
    """ParallelExecutor.execute() runs for real; account() predicts.
    The real run must stay bit-identical to the sequential engine and
    the predicted speedups must be monotonic over 1/2/4 processors."""
    prog, plan, inputs = _program("tomcatv")
    ex = ParallelExecutor(prog, plan, ALPHASERVER_8400, inputs=inputs,
                          engine="transpiled")
    real = ex.execute(processors=2)
    out0, ops0, cm0 = _seq_reference(prog, inputs)
    assert (real.outputs, real.ops, real.commons) == (out0, ops0, cm0)
    predicted = [ex.account(p).speedup for p in (1, 2, 4)]
    assert predicted[0] <= predicted[1] <= predicted[2]


def test_session_parallel_execute_builds_plan_on_demand():
    from repro.explorer.session import ExplorerSession
    w = ALL["ora"]
    session = ExplorerSession(w.build(), inputs=w.inputs)
    r = session.parallel_execute(workers=2)
    assert session.plan is not None
    prog2 = w.build()
    out0 = run_program(prog2, w.inputs, engine="transpiled").outputs
    assert r.outputs == out0


# -- service boundary ---------------------------------------------------------

def test_service_validates_parallel_options():
    from repro.service.jobs import MAX_WORKERS_CAP, validate_options
    out = validate_options({"workers": 10 ** 6,
                            "parallel_execute": True})
    assert out["workers"] == MAX_WORKERS_CAP
    assert out["parallel_execute"] is True
    for bad in ({"workers": 0}, {"workers": -2}, {"workers": "many"},
                {"workers": None}, {"parallel_execute": "yes"},
                {"parallel_execute": 2.5}):
        with pytest.raises(ValueError):
            validate_options(bad)


def test_service_job_records_parallel_execution():
    from repro.service.jobs import AnalysisRequest, execute_request
    art = execute_request(AnalysisRequest(
        "ora", options={"parallel_execute": True, "workers": 2,
                        "engine": "transpiled"}))
    pe = art["parallel_execution"]
    assert pe["workers"] == 2
    assert pe["matches_simulated"] is True
    assert pe["ops"] > 0 and pe["offloaded"] >= 1
    assert pe["outputs"] == art["execution"]["outputs"]


# -- trait-targeted rejection coverage (generated programs) -------------------
#
# Every offload-rejection class must be *producible on demand*: the
# synth factory has a trait profile per class, and for each one the
# containing plan marks the loop PARALLEL (the rejection is a backend
# codegen limit, not a planning failure) while execution falls back
# bit-identically to the sequential transpiled engine.

REJECTION_PROFILES = [
    ("call", "loop contains a call"),
    ("formal", "formal array"),
    ("conddrv", "conditionally reached"),
    ("red-mm", "read outside its update"),
]


@pytest.mark.parametrize("profile,needle", REJECTION_PROFILES)
def test_rejection_class_produced_on_demand(profile, needle):
    from repro.workloads import synth
    for seed in range(4):
        w = synth.generate(seed, profile)
        prog = build_program(w.source, w.name)
        plan = Parallelizer(prog).plan()
        offloads, rejects = analyze_offloads(prog, plan)
        hits = {loop: why for loop, why in rejects.items()
                if needle in why}
        assert hits, (
            f"{w.name}: no '{needle}' rejection; rejects={rejects}")
        # the rejected loops were *planned* parallel — the backend,
        # not the planner, declined them
        parallel_names = {l.name for l in plan.parallel_loops()}
        assert set(hits).issubset(parallel_names), (w.name, hits)


@pytest.mark.parametrize("profile,needle", REJECTION_PROFILES)
def test_rejected_loops_fall_back_bit_identically(profile, needle):
    from repro.workloads import synth
    w = synth.generate(1, profile)
    prog = build_program(w.source, w.name)
    plan = Parallelizer(prog).plan()
    out0, ops0, cm0 = _seq_reference(prog, ())
    r = ParallelRunner(prog, plan, workers=2, inline=True).execute(())
    assert r.outputs == out0, w.name
    assert r.ops == ops0, w.name
    assert r.commons == cm0, w.name
    assert any(needle in why for why in r.rejects.values()), (
        w.name, r.rejects)
