"""ISSA construction: phis, weak array updates, interprocedural edges."""

from repro.ir import build_program
from repro.ir.cfg import Cfg
from repro.ir.statements import AssignStmt, CallStmt
from repro.ssa import (ASSIGN, CALL_OUT, Dominance, ENTRY, FORMAL_PHI, ISSA,
                       ModRefInfo, PHI, WEAK)
from repro.ir.callgraph import CallGraph


def test_dominance_basics(simple_program):
    cfg = Cfg(simple_program.procedure("main"))
    dom = Dominance(cfg)
    assert dom.dominates(cfg.entry, cfg.exit)
    for bb in cfg.blocks:
        assert dom.dominates(cfg.entry, bb)


def test_phi_at_if_join():
    prog = build_program("""
      PROGRAM t
      IF (x .GT. 0.0) THEN
        y = 1.0
      ELSE
        y = 2.0
      ENDIF
      z = y
      END
""")
    issa = ISSA(prog)
    z_assign = [s for s in prog.procedure("t").statements()
                if isinstance(s, AssignStmt)
                and s.target.symbol.name == "z"][0]
    ysym = prog.procedure("t").symbols.lookup("y")
    yuse = issa.use_at(z_assign, ysym)
    assert yuse.kind == PHI
    assert len(yuse.operands) == 2
    assert all(op.kind == ASSIGN for op in yuse.operands)


def test_loop_phi_for_accumulator():
    prog = build_program("""
      PROGRAM t
      s = 0.0
      DO 10 i = 1, 5
        s = s + 1.0
10    CONTINUE
      PRINT *, s
      END
""")
    issa = ISSA(prog)
    proc = prog.procedure("t")
    s_update = [st for st in proc.statements() if isinstance(st, AssignStmt)
                and st.target.symbol.name == "s" and st.line == 5][0]
    suse = issa.use_at(s_update, proc.symbols.lookup("s"))
    assert suse.kind == PHI          # header phi merging init and update


def test_array_stores_are_weak_updates():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(10)
      a(1) = 1.0
      a(2) = 2.0
      x = a(1)
      END
""")
    issa = ISSA(prog)
    proc = prog.procedure("t")
    x_assign = [s for s in proc.statements() if isinstance(s, AssignStmt)
                and s.target.symbol.name == "x"][0]
    ause = issa.use_at(x_assign, proc.symbols.lookup("a"))
    assert ause.kind == WEAK
    # the weak chain keeps the previous version as an operand
    assert any(op.kind == WEAK for op in ause.operands)


def test_formal_phi_collects_all_call_sites():
    prog = build_program("""
      PROGRAM t
      x = 1.0
      y = 2.0
      CALL f(x)
      CALL f(y)
      END
      SUBROUTINE f(a)
      b = a
      END
""")
    issa = ISSA(prog)
    f = prog.procedure("f")
    entry = issa.entry_defs["f"]
    formal_phi = entry[id(f.formals[0])]
    assert formal_phi.kind == FORMAL_PHI
    assert len(formal_phi.site_operands) == 2


def test_call_out_links_callee_exit():
    prog = build_program("""
      PROGRAM t
      n = 1
      CALL bump(n)
      m = n
      END
      SUBROUTINE bump(k)
      k = k + 1
      END
""")
    issa = ISSA(prog)
    proc = prog.procedure("t")
    m_assign = [s for s in proc.statements() if isinstance(s, AssignStmt)
                and s.target.symbol.name == "m"][0]
    nuse = issa.use_at(m_assign, proc.symbols.lookup("n"))
    assert nuse.kind == CALL_OUT
    assert nuse.callee_exits
    assert nuse.callee_exits[0].proc_name == "bump"


def test_common_threaded_through_non_declaring_proc():
    """main -> mid -> leaf where only leaf declares the block: mid gets a
    pseudo whole-block variable so the value chain is unbroken."""
    prog = build_program("""
      PROGRAM t
      COMMON /c/ v
      v = 1.0
      CALL mid
      x = v
      END
      SUBROUTINE mid
      CALL leaf
      END
      SUBROUTINE leaf
      COMMON /c/ v
      v = v + 1.0
      END
""")
    issa = ISSA(prog)
    mid_tracked = issa.tracked["mid"]
    assert any(s.is_common and s.common_block == "c" for s in mid_tracked)
    proc = prog.procedure("t")
    x_assign = [s for s in proc.statements() if isinstance(s, AssignStmt)
                and s.target.symbol.name == "x"][0]
    vuse = issa.use_at(x_assign, proc.symbols.lookup("v"))
    assert vuse.kind == CALL_OUT


def test_modref_transitive():
    prog = build_program("""
      PROGRAM t
      COMMON /c/ v
      v = 0.0
      CALL a1
      END
      SUBROUTINE a1
      CALL b1
      END
      SUBROUTINE b1
      COMMON /c/ v
      v = 3.0
      END
""")
    mr = ModRefInfo(prog, CallGraph(prog))
    assert ("cm", "c") in mr.mod["a1"]
    assert ("cm", "c") in mr.mod["b1"]


def test_modref_formal_positions():
    prog = build_program("""
      PROGRAM t
      x = 1.0
      CALL f(x, y)
      END
      SUBROUTINE f(a, b)
      a = b + 1.0
      END
""")
    mr = ModRefInfo(prog, CallGraph(prog))
    assert ("f", 0) in mr.mod["f"]
    assert ("f", 0) not in mr.ref["f"] or True
    assert ("f", 1) in mr.ref["f"]
