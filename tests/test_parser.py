"""Parser behaviour: units, declarations, loops (both forms), IFs, GOTOs."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_source


def parse_main(body, decls=""):
    return parse_source(
        f"      PROGRAM t\n{decls}{body}      END\n").units[0]


def test_program_and_subroutine_units():
    tree = parse_source("""
      PROGRAM main
      x = 1.0
      END

      SUBROUTINE foo(a, n)
      a = n
      END
""")
    assert [u.kind for u in tree.units] == ["program", "subroutine"]
    assert tree.units[1].params == ["a", "n"]


def test_label_terminated_do():
    unit = parse_main("""      DO 10 i = 1, n
        x = x + 1.0
10    CONTINUE
""")
    loop = unit.body[0]
    assert isinstance(loop, ast.DoLoop)
    assert loop.term_label == 10
    assert isinstance(loop.body[-1], ast.Continue)


def test_enddo_form():
    unit = parse_main("""      DO i = 1, 10
        x = i
      END DO
""")
    loop = unit.body[0]
    assert isinstance(loop, ast.DoLoop)
    assert loop.term_label is None


def test_shared_terminator_nested_loops():
    unit = parse_main("""      DO 30 i = 1, n
        DO 30 j = 1, m
          x = i + j
30    CONTINUE
""")
    outer = unit.body[0]
    assert isinstance(outer, ast.DoLoop)
    inner = outer.body[0]
    assert isinstance(inner, ast.DoLoop)
    assert inner.term_label == 30
    assert outer.term_label == 30


def test_do_with_step():
    unit = parse_main("""      DO 40 i = 10, 2, -2
        x = i
40    CONTINUE
""")
    assert unit.body[0].step is not None


def test_block_if_elseif_else():
    unit = parse_main("""      IF (x .GT. 1.0) THEN
        y = 1.0
      ELSE IF (x .GT. 0.0) THEN
        y = 2.0
      ELSE
        y = 3.0
      ENDIF
""")
    node = unit.body[0]
    assert isinstance(node, ast.IfBlock)
    assert len(node.arms) == 2
    assert node.else_body is not None


def test_logical_if():
    unit = parse_main("      IF (k .EQ. 0) GO TO 10\n10    CONTINUE\n")
    node = unit.body[0]
    assert isinstance(node, ast.LogicalIf)
    assert isinstance(node.stmt, ast.Goto)


def test_declarations():
    unit = parse_main("      x = 1.0\n", decls="""      DIMENSION a(10, 0:5), b(*)
      INTEGER n, idx(100)
      COMMON /blk/ c(20), d
      PARAMETER (m = 4 + 1)
""")
    kinds = [d.kind for d in unit.decls]
    assert kinds == ["dimension", "type", "common", "parameter"]
    dim = unit.decls[0]
    assert dim.entries[0].name == "a"
    assert len(dim.entries[0].dims) == 2
    assert dim.entries[1].dims == [(None, None)]     # assumed size
    assert unit.decls[2].common_name == "blk"
    assert unit.decls[3].params[0][0] == "m"


def test_call_with_and_without_args():
    unit = parse_main("      CALL foo(a, n+1)\n      CALL bar\n")
    assert isinstance(unit.body[0], ast.CallStmt)
    assert len(unit.body[0].args) == 2
    assert unit.body[1].args == []


def test_operator_precedence():
    unit = parse_main("      x = 1 + 2 * 3\n")
    value = unit.body[0].value
    assert isinstance(value, ast.BinOp) and value.op == "+"
    assert isinstance(value.right, ast.BinOp) and value.right.op == "*"


def test_power_binds_tighter_than_unary_minus():
    unit = parse_main("      x = -y ** 2\n")
    value = unit.body[0].value
    assert isinstance(value, ast.UnOp) and value.op == "-"
    assert isinstance(value.operand, ast.BinOp)
    assert value.operand.op == "**"


def test_print_and_read():
    unit = parse_main("      PRINT *, x, y\n      READ *, n\n")
    assert unit.body[0].kind == "print"
    assert len(unit.body[0].items) == 2
    assert unit.body[1].kind == "read"


def test_missing_do_terminator_raises():
    with pytest.raises(ParseError):
        parse_main("      DO 10 i = 1, n\n        x = i\n")


def test_unexpected_token_raises():
    with pytest.raises(ParseError):
        parse_main("      = 5\n")


def test_empty_source_raises():
    with pytest.raises(ParseError):
        parse_source("")
