"""The analysis service: artifact store, job scheduler, HTTP server.

Covers the PR-2 contracts: content-addressed keying (any change to
source / inputs / options / schema version misses), corruption
tolerance (truncated disk entry → recompute, never crash), in-flight
dedupe, worker-crash retry, and the determinism guarantee (process-pool
batch artifacts bit-identical to sequential in-process runs over ≥5
corpus workloads).
"""

import json
import os

import pytest

from repro.service import (AnalysisRequest, AnalysisServer, ArtifactStore,
                           BatchScheduler, ServiceMetrics, artifact_key,
                           canonical_json, execute_request, run_sequential)

#: Small corpus entries (sub-second each) used throughout.
SMALL = ["ora", "track", "ear", "doduc", "dyfesm"]

SRC = """
      PROGRAM tiny
      DIMENSION a(40)
      DO 10 i = 1, 40
        a(i) = i * 2.0
10    CONTINUE
      s = 0.0
      DO 20 i = 1, 40
        s = s + a(i)
20    CONTINUE
      PRINT *, s
      END
"""


# -- content addressing -------------------------------------------------------

def test_key_is_stable_for_identical_requests():
    assert AnalysisRequest("ora").key() == AnalysisRequest("ora").key()
    a = AnalysisRequest(source=SRC, program_name="tiny").key()
    b = AnalysisRequest(source=SRC, program_name="tiny").key()
    assert a == b


def test_key_changes_with_source_inputs_options_and_schema():
    base = artifact_key(SRC, "tiny", [1.0], {"engine": "compiled"})
    assert base != artifact_key(SRC + "\nC x", "tiny", [1.0],
                                {"engine": "compiled"})
    assert base != artifact_key(SRC, "tiny", [2.0], {"engine": "compiled"})
    assert base != artifact_key(SRC, "tiny", [1.0], {"engine": "tree"})
    assert base != artifact_key(SRC, "tiny", [1.0], {"engine": "compiled"},
                                schema_version=999)


def test_request_requires_exactly_one_target():
    with pytest.raises(ValueError):
        AnalysisRequest()
    with pytest.raises(ValueError):
        AnalysisRequest("ora", source=SRC)


def test_unknown_workload_raises_helpful_keyerror():
    with pytest.raises(KeyError, match="choose from.*mdg"):
        AnalysisRequest("no-such-workload").key()


# -- artifact store -----------------------------------------------------------

def test_store_round_trip_memory_and_disk(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("ab" * 32, {"x": 1})
    assert store.get("ab" * 32) == {"x": 1}          # memory hit
    store.clear_memory()
    assert store.get("ab" * 32) == {"x": 1}          # disk hit
    assert store.get("cd" * 32) is None              # miss
    assert ("ab" * 32) in store and len(store) == 1


def test_store_invalidation(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("ab" * 32, {"x": 1})
    assert store.invalidate("ab" * 32)
    assert store.get("ab" * 32) is None
    assert not store.invalidate("ab" * 32)           # already gone


def test_store_tolerates_truncated_disk_entry(tmp_path):
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    key = "ab" * 32
    store.put(key, {"x": 1})
    store.clear_memory()
    path, = list(tmp_path.glob("*/*.json"))
    path.write_text(path.read_text()[:17])           # simulate torn write
    assert store.get(key) is None                    # miss, not a crash
    assert metrics.counter("cache_corrupt") == 1
    assert not path.exists()                         # quarantined
    store.put(key, {"x": 2})                         # recompute path works
    assert store.get(key) == {"x": 2}


def test_store_memory_lru_is_bounded():
    store = ArtifactStore(None, memory_capacity=2)   # memory-only
    for i in range(3):
        store.put(f"k{i}" * 16, {"i": i})
    assert store.get("k0" * 16) is None              # evicted
    assert store.get("k2" * 16) == {"i": 2}


def test_store_lru_eviction_order_is_least_recently_used():
    """Eviction must follow *use* recency, not insertion order: a get()
    refreshes the entry, so the untouched one is evicted first."""
    metrics = ServiceMetrics()
    store = ArtifactStore(None, memory_capacity=2, metrics=metrics)
    k0, k1, k2 = ("k0" * 16, "k1" * 16, "k2" * 16)
    store.put(k0, {"i": 0})
    store.put(k1, {"i": 1})
    assert store.get(k0) == {"i": 0}                 # refresh k0
    store.put(k2, {"i": 2})                          # evicts k1, not k0
    assert store.get(k1) is None
    assert store.get(k0) == {"i": 0}
    assert store.get(k2) == {"i": 2}
    assert metrics.counter("cache_evictions") == 1


def test_store_lru_re_put_refreshes_recency():
    """Re-storing an existing key must move it to most-recent, so the
    other entry is the eviction victim."""
    store = ArtifactStore(None, memory_capacity=2)
    k0, k1, k2 = ("k0" * 16, "k1" * 16, "k2" * 16)
    store.put(k0, {"i": 0})
    store.put(k1, {"i": 1})
    store.put(k0, {"i": 0})                          # refresh via put
    store.put(k2, {"i": 2})                          # evicts k1
    assert store.get(k1) is None
    assert store.get(k0) == {"i": 0}


def test_store_zero_capacity_disables_memory_layer(tmp_path):
    """memory_capacity=0 must not crash or evict-loop; disk still works."""
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, memory_capacity=0, metrics=metrics)
    key = "ab" * 32
    store.put(key, {"x": 1})
    assert store.stats()["memory_entries"] == 0
    assert store.get(key) == {"x": 1}                # served from disk
    assert metrics.counter("cache_hits_disk") == 1
    assert metrics.counter("cache_evictions") == 0


# -- executing requests -------------------------------------------------------

@pytest.fixture(scope="module")
def ora_artifact():
    return execute_request(AnalysisRequest("ora"))


def test_artifact_contains_every_product(ora_artifact):
    art = ora_artifact
    assert set(art) >= {"program", "plan", "profiles", "dyndep", "guru",
                        "slices", "metrics", "execution", "summary",
                        "request"}
    assert art["execution"]["speedup"] > 1.0
    assert art["program"]["name"] == "ora"
    assert any(row["parallel"] for row in art["plan"].values())
    json.dumps(art)                                  # fully serializable


def test_artifact_is_deterministic(ora_artifact):
    again = execute_request(AnalysisRequest("ora"))
    assert canonical_json(again) == canonical_json(ora_artifact)


def test_execute_rejects_unknown_machine():
    with pytest.raises(ValueError, match="unknown machine"):
        execute_request(AnalysisRequest("ora",
                                        options={"machine": "cray"}))


# -- scheduler ----------------------------------------------------------------

def test_scheduler_serves_repeats_from_cache(tmp_path):
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    with BatchScheduler(store, metrics=metrics, inline=True) as sched:
        first = sched.submit(AnalysisRequest("ora"))
        second = sched.submit(AnalysisRequest("ora"))
    assert first.state == "done" and not first.cached
    assert second.state == "done" and second.cached
    assert metrics.counter("jobs_served_cached") == 1


def test_warm_repeat_transpiled_job_skips_codegen(tmp_path):
    """First transpiled job pays codegen (``codegen_cache_miss``); a
    repeat of the same program (distinct salt, so the artifact cache
    can't serve it) reuses the generated modules and only the hit
    counter moves."""
    from repro.runtime.transpile import (reset_codegen_cache,
                                         set_codegen_store)
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    reset_codegen_cache()
    try:
        with BatchScheduler(store, metrics=metrics, inline=True) as sched:
            cold = sched.submit(AnalysisRequest(
                "ora", options={"engine": "transpiled", "salt": "cg1"}))
            assert cold.state == "done"
            misses = metrics.counter("codegen_cache_miss")
            assert misses >= 1, "cold transpiled job never ran codegen"
            warm = sched.submit(AnalysisRequest(
                "ora", options={"engine": "transpiled", "salt": "cg2"}))
            assert warm.state == "done" and not warm.cached
            assert metrics.counter("codegen_cache_hit") >= 1
            assert metrics.counter("codegen_cache_miss") == misses, (
                "warm repeat re-ran codegen")
    finally:
        set_codegen_store(None)
        reset_codegen_cache()


def test_scheduler_dedupes_identical_inflight_requests(monkeypatch):
    metrics = ServiceMetrics()
    sched = BatchScheduler(ArtifactStore(None), metrics=metrics)
    monkeypatch.setattr(sched, "_dispatch", lambda job: None)  # hold queued
    a = sched.submit(AnalysisRequest("ora"))
    b = sched.submit(AnalysisRequest("ora"))
    assert a is b
    assert metrics.counter("jobs_deduped") == 1
    assert metrics.counter("jobs_submitted") == 1
    sched._finish_done(a, {"stub": True})            # release
    c = sched.submit(AnalysisRequest("ora"))
    assert c is not a and c.cached


def test_scheduler_marks_bad_source_failed():
    with BatchScheduler(ArtifactStore(None), inline=True) as sched:
        job = sched.submit(AnalysisRequest(source="THIS IS NOT FORTRAN",
                                           program_name="bad"))
        arts = [sched.artifact(job)]
    assert job.state == "failed"
    assert job.error
    assert arts == [None]


def test_scheduler_retries_after_worker_crash(tmp_path):
    marker = tmp_path / "crash-marker"
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics,
                        workers=1) as sched:
        job = sched.submit(AnalysisRequest(
            "ora", options={"fault": f"crash-once:{marker}"}))
        assert job.wait(120)
    assert job.state == "done"
    assert job.attempts == 2
    assert metrics.counter("worker_crashes") == 1
    assert metrics.counter("jobs_retried") == 1


def test_job_lifecycle_dict():
    with BatchScheduler(ArtifactStore(None), inline=True) as sched:
        job = sched.submit(AnalysisRequest("ora"))
    d = job.to_dict()
    assert d["state"] == "done" and d["target"] == "ora"
    assert d["attempts"] == 1 and d["error"] is None
    assert len(d["key"]) == 64


# -- the determinism contract -------------------------------------------------

def test_pool_batch_bit_identical_to_sequential(tmp_path):
    """≥5 corpus workloads through the process pool == sequential runs."""
    requests = [AnalysisRequest(name) for name in SMALL]
    with BatchScheduler(ArtifactStore(tmp_path), workers=2) as sched:
        batch = sched.batch(requests, timeout=300)
    sequential = run_sequential([AnalysisRequest(n) for n in SMALL])
    assert all(batch)
    for name, got, want in zip(SMALL, batch, sequential):
        assert canonical_json(got) == canonical_json(want), \
            f"{name}: batch artifact drifted from the sequential oracle"


def test_warm_batch_is_all_cache_hits(tmp_path):
    store = ArtifactStore(tmp_path)
    with BatchScheduler(store, inline=True) as sched:
        sched.batch([AnalysisRequest(n) for n in SMALL[:2]])
    metrics = ServiceMetrics()
    warm_store = ArtifactStore(tmp_path, metrics=metrics)   # fresh LRU
    with BatchScheduler(warm_store, metrics=metrics, inline=True) as sched:
        jobs = [sched.submit(AnalysisRequest(n)) for n in SMALL[:2]]
    assert all(j.cached for j in jobs)
    assert metrics.counter("cache_misses") == 0


# -- HTTP server --------------------------------------------------------------

@pytest.fixture(scope="module")
def server():
    with AnalysisServer(inline=True) as srv:       # port 0 → ephemeral
        yield srv


def _call(server, method, path, body=None):
    import urllib.error
    import urllib.request
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(server.url + path, data=data,
                                 method=method,
                                 headers={"Content-Type":
                                          "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_server_job_round_trip(server):
    status, out = _call(server, "POST", "/jobs", {"workload": "ora"})
    assert status == 202
    job = out["job"]
    status, out = _call(server, "GET", f"/jobs/{job['id']}")
    assert status == 200 and out["job"]["state"] == "done"
    status, art = _call(server, "GET", f"/artifacts/{job['key']}")
    assert status == 200 and art["execution"]["speedup"] > 1.0
    # a second client asking the same question is served from the cache
    status, out = _call(server, "POST", "/jobs", {"workload": "ora"})
    assert status == 202 and out["job"]["cached"]


def test_server_corpus_and_metrics(server):
    status, out = _call(server, "GET", "/corpus")
    assert status == 200
    names = {w["name"] for w in out["workloads"]}
    assert {"mdg", "hydro", "ora"} <= names
    status, out = _call(server, "GET", "/metrics")
    assert status == 200
    assert "cache_hit_rate" in out and "counters" in out
    status, out = _call(server, "GET", "/healthz")
    assert status == 200 and out["ok"]


def test_server_error_paths(server):
    assert _call(server, "GET", "/jobs/job-999999")[0] == 404
    assert _call(server, "GET", "/artifacts/" + "0" * 64)[0] == 404
    assert _call(server, "GET", "/no/such/route")[0] == 404
    status, out = _call(server, "POST", "/jobs", {"workload": "nope"})
    assert status == 400 and "unknown workload" in out["error"]
    status, out = _call(server, "POST", "/jobs", {})
    assert status == 400
