"""The analysis service: artifact store, job scheduler, HTTP server.

Covers the PR-2 contracts: content-addressed keying (any change to
source / inputs / options / schema version misses), corruption
tolerance (truncated disk entry → recompute, never crash), in-flight
dedupe, worker-crash retry, and the determinism guarantee (process-pool
batch artifacts bit-identical to sequential in-process runs over ≥5
corpus workloads).
"""

import json
import os

import pytest

from repro.service import (AnalysisRequest, AnalysisServer, ArtifactStore,
                           BatchScheduler, ServiceMetrics, artifact_key,
                           canonical_json, execute_request, run_sequential)

#: Small corpus entries (sub-second each) used throughout.
SMALL = ["ora", "track", "ear", "doduc", "dyfesm"]

SRC = """
      PROGRAM tiny
      DIMENSION a(40)
      DO 10 i = 1, 40
        a(i) = i * 2.0
10    CONTINUE
      s = 0.0
      DO 20 i = 1, 40
        s = s + a(i)
20    CONTINUE
      PRINT *, s
      END
"""


# -- content addressing -------------------------------------------------------

def test_key_is_stable_for_identical_requests():
    assert AnalysisRequest("ora").key() == AnalysisRequest("ora").key()
    a = AnalysisRequest(source=SRC, program_name="tiny").key()
    b = AnalysisRequest(source=SRC, program_name="tiny").key()
    assert a == b


def test_key_changes_with_source_inputs_options_and_schema():
    base = artifact_key(SRC, "tiny", [1.0], {"engine": "compiled"})
    assert base != artifact_key(SRC + "\nC x", "tiny", [1.0],
                                {"engine": "compiled"})
    assert base != artifact_key(SRC, "tiny", [2.0], {"engine": "compiled"})
    assert base != artifact_key(SRC, "tiny", [1.0], {"engine": "tree"})
    assert base != artifact_key(SRC, "tiny", [1.0], {"engine": "compiled"},
                                schema_version=999)


def test_request_requires_exactly_one_target():
    with pytest.raises(ValueError):
        AnalysisRequest()
    with pytest.raises(ValueError):
        AnalysisRequest("ora", source=SRC)


def test_unknown_workload_raises_helpful_keyerror():
    with pytest.raises(KeyError, match="choose from.*mdg"):
        AnalysisRequest("no-such-workload").key()


# -- artifact store -----------------------------------------------------------

def test_store_round_trip_memory_and_disk(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("ab" * 32, {"x": 1})
    assert store.get("ab" * 32) == {"x": 1}          # memory hit
    store.clear_memory()
    assert store.get("ab" * 32) == {"x": 1}          # disk hit
    assert store.get("cd" * 32) is None              # miss
    assert ("ab" * 32) in store and len(store) == 1


def test_store_invalidation(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("ab" * 32, {"x": 1})
    assert store.invalidate("ab" * 32)
    assert store.get("ab" * 32) is None
    assert not store.invalidate("ab" * 32)           # already gone


def test_store_tolerates_truncated_disk_entry(tmp_path):
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    key = "ab" * 32
    store.put(key, {"x": 1})
    store.clear_memory()
    path, = list(tmp_path.glob("*/*.json"))
    path.write_text(path.read_text()[:17])           # simulate torn write
    assert store.get(key) is None                    # miss, not a crash
    assert metrics.counter("cache_corrupt") == 1
    assert not path.exists()                         # quarantined
    store.put(key, {"x": 2})                         # recompute path works
    assert store.get(key) == {"x": 2}


def test_store_memory_lru_is_bounded():
    store = ArtifactStore(None, memory_capacity=2)   # memory-only
    for i in range(3):
        store.put(f"k{i}" * 16, {"i": i})
    assert store.get("k0" * 16) is None              # evicted
    assert store.get("k2" * 16) == {"i": 2}


def test_store_lru_eviction_order_is_least_recently_used():
    """Eviction must follow *use* recency, not insertion order: a get()
    refreshes the entry, so the untouched one is evicted first."""
    metrics = ServiceMetrics()
    store = ArtifactStore(None, memory_capacity=2, metrics=metrics)
    k0, k1, k2 = ("k0" * 16, "k1" * 16, "k2" * 16)
    store.put(k0, {"i": 0})
    store.put(k1, {"i": 1})
    assert store.get(k0) == {"i": 0}                 # refresh k0
    store.put(k2, {"i": 2})                          # evicts k1, not k0
    assert store.get(k1) is None
    assert store.get(k0) == {"i": 0}
    assert store.get(k2) == {"i": 2}
    assert metrics.counter("cache_evictions") == 1


def test_store_lru_re_put_refreshes_recency():
    """Re-storing an existing key must move it to most-recent, so the
    other entry is the eviction victim."""
    store = ArtifactStore(None, memory_capacity=2)
    k0, k1, k2 = ("k0" * 16, "k1" * 16, "k2" * 16)
    store.put(k0, {"i": 0})
    store.put(k1, {"i": 1})
    store.put(k0, {"i": 0})                          # refresh via put
    store.put(k2, {"i": 2})                          # evicts k1
    assert store.get(k1) is None
    assert store.get(k0) == {"i": 0}


def test_store_zero_capacity_disables_memory_layer(tmp_path):
    """memory_capacity=0 must not crash or evict-loop; disk still works."""
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, memory_capacity=0, metrics=metrics)
    key = "ab" * 32
    store.put(key, {"x": 1})
    assert store.stats()["memory_entries"] == 0
    assert store.get(key) == {"x": 1}                # served from disk
    assert metrics.counter("cache_hits_disk") == 1
    assert metrics.counter("cache_evictions") == 0


# -- executing requests -------------------------------------------------------

@pytest.fixture(scope="module")
def ora_artifact():
    return execute_request(AnalysisRequest("ora"))


def test_artifact_contains_every_product(ora_artifact):
    art = ora_artifact
    assert set(art) >= {"program", "plan", "profiles", "dyndep", "guru",
                        "slices", "metrics", "execution", "summary",
                        "request"}
    assert art["execution"]["speedup"] > 1.0
    assert art["program"]["name"] == "ora"
    assert any(row["parallel"] for row in art["plan"].values())
    json.dumps(art)                                  # fully serializable


def test_artifact_is_deterministic(ora_artifact):
    again = execute_request(AnalysisRequest("ora"))
    assert canonical_json(again) == canonical_json(ora_artifact)


def test_execute_rejects_unknown_machine():
    with pytest.raises(ValueError, match="unknown machine"):
        execute_request(AnalysisRequest("ora",
                                        options={"machine": "cray"}))


# -- scheduler ----------------------------------------------------------------

def test_scheduler_serves_repeats_from_cache(tmp_path):
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    with BatchScheduler(store, metrics=metrics, inline=True) as sched:
        first = sched.submit(AnalysisRequest("ora"))
        second = sched.submit(AnalysisRequest("ora"))
    assert first.state == "done" and not first.cached
    assert second.state == "done" and second.cached
    assert metrics.counter("jobs_served_cached") == 1


def test_warm_repeat_transpiled_job_skips_codegen(tmp_path):
    """First transpiled job pays codegen (``codegen_cache_miss``); a
    repeat of the same program (distinct salt, so the artifact cache
    can't serve it) reuses the generated modules and only the hit
    counter moves."""
    from repro.runtime.transpile import (reset_codegen_cache,
                                         set_codegen_store)
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    reset_codegen_cache()
    try:
        with BatchScheduler(store, metrics=metrics, inline=True) as sched:
            cold = sched.submit(AnalysisRequest(
                "ora", options={"engine": "transpiled", "salt": "cg1"}))
            assert cold.state == "done"
            misses = metrics.counter("codegen_cache_miss")
            assert misses >= 1, "cold transpiled job never ran codegen"
            warm = sched.submit(AnalysisRequest(
                "ora", options={"engine": "transpiled", "salt": "cg2"}))
            assert warm.state == "done" and not warm.cached
            assert metrics.counter("codegen_cache_hit") >= 1
            assert metrics.counter("codegen_cache_miss") == misses, (
                "warm repeat re-ran codegen")
    finally:
        set_codegen_store(None)
        reset_codegen_cache()


def test_scheduler_dedupes_identical_inflight_requests(monkeypatch):
    metrics = ServiceMetrics()
    sched = BatchScheduler(ArtifactStore(None), metrics=metrics)
    monkeypatch.setattr(sched, "_dispatch", lambda job: None)  # hold queued
    a = sched.submit(AnalysisRequest("ora"))
    b = sched.submit(AnalysisRequest("ora"))
    assert a is b
    assert metrics.counter("jobs_deduped") == 1
    assert metrics.counter("jobs_submitted") == 1
    sched._finish_done(a, {"stub": True})            # release
    c = sched.submit(AnalysisRequest("ora"))
    assert c is not a and c.cached


def test_scheduler_marks_bad_source_failed():
    with BatchScheduler(ArtifactStore(None), inline=True) as sched:
        job = sched.submit(AnalysisRequest(source="THIS IS NOT FORTRAN",
                                           program_name="bad"))
        arts = [sched.artifact(job)]
    assert job.state == "failed"
    assert job.error
    assert arts == [None]


def test_scheduler_retries_after_worker_crash(tmp_path):
    marker = tmp_path / "crash-marker"
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics,
                        workers=1) as sched:
        job = sched.submit(AnalysisRequest(
            "ora", options={"fault": f"crash-once:{marker}"}))
        assert job.wait(120)
    assert job.state == "done"
    assert job.attempts == 2
    assert metrics.counter("worker_crashes") == 1
    assert metrics.counter("jobs_retried") == 1


def test_job_lifecycle_dict():
    with BatchScheduler(ArtifactStore(None), inline=True) as sched:
        job = sched.submit(AnalysisRequest("ora"))
    d = job.to_dict()
    assert d["state"] == "done" and d["target"] == "ora"
    assert d["attempts"] == 1 and d["error"] is None
    assert len(d["key"]) == 64


# -- the determinism contract -------------------------------------------------

def test_pool_batch_bit_identical_to_sequential(tmp_path):
    """≥5 corpus workloads through the process pool == sequential runs."""
    requests = [AnalysisRequest(name) for name in SMALL]
    with BatchScheduler(ArtifactStore(tmp_path), workers=2) as sched:
        batch = sched.batch(requests, timeout=300)
    sequential = run_sequential([AnalysisRequest(n) for n in SMALL])
    assert all(batch)
    for name, got, want in zip(SMALL, batch, sequential):
        assert canonical_json(got) == canonical_json(want), \
            f"{name}: batch artifact drifted from the sequential oracle"


def test_warm_batch_is_all_cache_hits(tmp_path):
    store = ArtifactStore(tmp_path)
    with BatchScheduler(store, inline=True) as sched:
        sched.batch([AnalysisRequest(n) for n in SMALL[:2]])
    metrics = ServiceMetrics()
    warm_store = ArtifactStore(tmp_path, metrics=metrics)   # fresh LRU
    with BatchScheduler(warm_store, metrics=metrics, inline=True) as sched:
        jobs = [sched.submit(AnalysisRequest(n)) for n in SMALL[:2]]
    assert all(j.cached for j in jobs)
    assert metrics.counter("cache_misses") == 0


# -- HTTP server --------------------------------------------------------------

@pytest.fixture(scope="module")
def server():
    with AnalysisServer(inline=True) as srv:       # port 0 → ephemeral
        yield srv


def _call(server, method, path, body=None):
    import urllib.error
    import urllib.request
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(server.url + path, data=data,
                                 method=method,
                                 headers={"Content-Type":
                                          "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_server_job_round_trip(server):
    status, out = _call(server, "POST", "/jobs", {"workload": "ora"})
    assert status == 202
    job = out["job"]
    status, out = _call(server, "GET", f"/jobs/{job['id']}")
    assert status == 200 and out["job"]["state"] == "done"
    status, art = _call(server, "GET", f"/artifacts/{job['key']}")
    assert status == 200 and art["execution"]["speedup"] > 1.0
    # a second client asking the same question is served from the cache
    status, out = _call(server, "POST", "/jobs", {"workload": "ora"})
    assert status == 202 and out["job"]["cached"]


def test_server_corpus_and_metrics(server):
    status, out = _call(server, "GET", "/corpus")
    assert status == 200
    names = {w["name"] for w in out["workloads"]}
    assert {"mdg", "hydro", "ora"} <= names
    status, out = _call(server, "GET", "/metrics")
    assert status == 200
    assert "cache_hit_rate" in out and "counters" in out
    status, out = _call(server, "GET", "/healthz")
    assert status == 200 and out["ok"]


def test_server_error_paths(server):
    assert _call(server, "GET", "/jobs/job-999999")[0] == 404
    assert _call(server, "GET", "/artifacts/" + "0" * 64)[0] == 404
    assert _call(server, "GET", "/no/such/route")[0] == 404
    status, out = _call(server, "POST", "/jobs", {"workload": "nope"})
    assert status == 400 and "unknown workload" in out["error"]
    status, out = _call(server, "POST", "/jobs", {})
    assert status == 400


# -- cross-process claim protocol ---------------------------------------------

def test_claim_acquire_release_round_trip(tmp_path):
    store = ArtifactStore(tmp_path)
    key = "ab" * 32
    assert store.claim(key)
    info = store.claim_info(key)
    assert info["pid"] == os.getpid()
    # held claims (live pid) are not re-acquirable, even by ourselves:
    # in-process single-flight belongs to the scheduler's dedupe table
    assert not store.claim(key)
    store.release(key)
    assert store.claim_info(key) is None
    assert store.claim(key)                          # reusable after release
    store.release(key)


def test_memory_only_store_claims_trivially():
    store = ArtifactStore(None)
    assert store.claim("ab" * 32)
    store.release("ab" * 32)                         # no-op, no crash


def test_stale_claim_from_dead_pid_is_broken_and_quarantined(tmp_path):
    import subprocess
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    key = "cd" * 32
    # fabricate a claim owned by a pid that is provably dead
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    path = store._claim_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"pid": proc.pid, "acquired_at": 0.0}))
    # the breaker acquires despite the existing file...
    assert store.claim(key)
    assert store.claim_info(key)["pid"] == os.getpid()
    # ...and the dead claim was quarantined by rename, never unlinked
    stale = list(path.parent.glob("*.stale.*"))
    assert len(stale) == 1
    assert metrics.counter("claims_stale_broken") == 1
    assert metrics.counter("claims_acquired") == 1
    store.release(key)


def test_stale_claim_never_blocks_computation(tmp_path):
    """A scheduler hitting a dead process's claim must break it and
    compute — not park forever on a corpse."""
    import subprocess
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    request = AnalysisRequest("ora")
    key = request.key()
    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    path = store._claim_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"pid": proc.pid, "acquired_at": 0.0}))
    with BatchScheduler(store, metrics=metrics, inline=True) as sched:
        job = sched.submit(request)
        assert sched.wait([job], timeout=120)
        assert job.state == "done" and not job.cached
    assert metrics.counter("claims_stale_broken") == 1
    assert metrics.counter("artifacts_computed") == 1


def test_live_remote_claim_parks_job_until_artifact_lands(tmp_path):
    """A claim held by another *live* process parks the local job; when
    the artifact appears in the shared store (and the claim is
    released), the claim waiter settles the job without recomputing."""
    import subprocess
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    request = AnalysisRequest("ora")
    key = request.key()
    artifact = execute_request(request)
    # a live foreign owner: a sleeping child process
    proc = subprocess.Popen(["sleep", "60"])
    try:
        path = store._claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"pid": proc.pid,
                                    "acquired_at": 0.0}))
        with BatchScheduler(store, metrics=metrics, inline=True,
                            claim_poll_s=0.01) as sched:
            job = sched.submit(request)
            assert job.state == "queued"             # parked, not running
            assert metrics.counter("jobs_remote_waited") == 1
            # the "other process" finishes: put artifact, release claim
            ArtifactStore(tmp_path).put(key, artifact)
            path.unlink()
            assert sched.wait([job], timeout=30)
            assert job.state == "done" and job.cached
            assert sched.artifact(job) == artifact
    finally:
        proc.kill()
        proc.wait()
    assert metrics.counter("jobs_remote_served") == 1
    assert metrics.counter("artifacts_computed") == 0


def test_two_process_single_flight_computes_exactly_once(tmp_path):
    """Two real server processes sharing one cache dir race on the same
    key: the claim file must make exactly one of them compute, with
    bit-identical artifacts served to both."""
    import subprocess
    import sys
    child = (
        "import sys, json, hashlib\n"
        "from repro.service import (ArtifactStore, ServiceMetrics,\n"
        "                           BatchScheduler, AnalysisRequest,\n"
        "                           canonical_json)\n"
        "m = ServiceMetrics()\n"
        "store = ArtifactStore(sys.argv[1], metrics=m)\n"
        "with BatchScheduler(store, metrics=m, inline=True,\n"
        "                    claim_poll_s=0.01) as sched:\n"
        "    job = sched.submit(AnalysisRequest('ora'))\n"
        "    assert sched.wait([job], timeout=180), 'timed out'\n"
        "    art = sched.artifact(job)\n"
        "print(json.dumps({\n"
        "    'computed': m.snapshot()['counters']\n"
        "        .get('artifacts_computed', 0),\n"
        "    'state': job.state,\n"
        "    'sha': hashlib.sha256(\n"
        "        canonical_json(art).encode()).hexdigest(),\n"
        "}))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = [subprocess.Popen([sys.executable, "-c", child,
                               str(tmp_path)],
                              stdout=subprocess.PIPE, env=env)
             for _ in range(2)]
    results = []
    for proc in procs:
        out, _ = proc.communicate(timeout=240)
        assert proc.returncode == 0
        results.append(json.loads(out))
    assert all(r["state"] == "done" for r in results)
    assert sum(r["computed"] for r in results) == 1  # exactly once
    assert results[0]["sha"] == results[1]["sha"]    # bit-identical


# -- admission control --------------------------------------------------------

def test_queue_full_sheds_new_work_but_admits_dedupe_and_hits(tmp_path):
    from repro.service import QueueFull
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    with BatchScheduler(store, metrics=metrics, workers=1,
                        max_queue=1) as sched:
        slow = AnalysisRequest("ora",
                               options={"fault": "slow-start:1.0"})
        job = sched.submit(slow)                     # fills the queue
        with pytest.raises(QueueFull) as exc:
            sched.submit(AnalysisRequest("track"))   # new key: shed
        assert exc.value.retry_after_s > 0
        assert metrics.counter("shed_total") == 1
        assert metrics.counter("shed_queue_full") == 1
        # identical in-flight request dedupes — always admitted
        again = sched.submit(AnalysisRequest(
            "ora", options={"fault": "slow-start:1.0"}))
        assert again is job
        assert sched.wait([job], timeout=120)
        # queue drained: new work admitted again
        ok = sched.submit(AnalysisRequest("ora"))    # cache hit path
        assert ok.state == "done" and ok.cached


def test_queue_full_maps_to_429_with_retry_after():
    from repro.service import AnalysisService
    service = AnalysisService(inline=True, max_queue=0)
    try:
        status, payload = service.handle_post("/jobs",
                                              {"workload": "ora"})
        assert status == 429
        assert payload["retry_after_s"] > 0
        assert "queue full" in payload["error"]
    finally:
        service.close()


# -- sharded scheduler --------------------------------------------------------

def test_shard_of_is_deterministic_and_in_range():
    from repro.service import shard_of
    keys = [artifact_key(SRC, f"p{i}", [1.0], {}) for i in range(64)]
    for key in keys:
        shard = shard_of(key, 4)
        assert 0 <= shard < 4
        assert shard == shard_of(key, 4)
    # keys spread over shards (sha256 uniformity; 64 keys, 4 shards)
    assert len({shard_of(k, 4) for k in keys}) == 4


def test_sharded_scheduler_routes_dedupes_and_merges(tmp_path):
    from repro.service import ShardedScheduler, request_key, shard_of
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=metrics)
    with ShardedScheduler(store, shards=2, metrics=metrics,
                          inline=True) as sched:
        reqs = [AnalysisRequest(n) for n in ("ora", "track", "ear")]
        jobs = [sched.submit(r) for r in reqs]
        assert sched.wait(jobs, timeout=300)
        for req, job in zip(reqs, jobs):
            assert job.state == "done"
            # routed by content key
            assert job.shard == shard_of(request_key(req), 2)
            # fan-in queries find jobs on any shard
            assert sched.job(job.id) is job
            assert sched.artifact(job) is not None
        # identical resubmit dedupes/caches on the same shard
        again = sched.submit(AnalysisRequest("ora"))
        assert again.state == "done" and again.cached
        assert again.shard == jobs[0].shard
        assert [j.id for j in sched.jobs()] == \
            sorted(j.id for j in list(jobs) + [again])
        stats = sched.shard_stats()
        assert [s["shard"] for s in stats] == [0, 1]
        assert all(s["queue_depth"] == 0 for s in stats)
    gauges = metrics.snapshot()["gauges"]
    assert "queue_depth_shard_0" in gauges or \
        "queue_depth_shard_1" in gauges
    assert "queue_depth" not in gauges               # no clobbered global


def test_sharded_artifacts_bit_identical_to_sequential(tmp_path):
    from repro.service import ShardedScheduler
    reqs = [AnalysisRequest(n) for n in SMALL[:3]]
    expected = run_sequential([AnalysisRequest(n) for n in SMALL[:3]])
    with ShardedScheduler(ArtifactStore(tmp_path), shards=3,
                          inline=True) as sched:
        got = sched.batch(reqs, timeout=600)
    for art, ref in zip(got, expected):
        assert canonical_json(art) == canonical_json(ref)


# -- job progress events ------------------------------------------------------

def test_job_events_sequence_and_terminal_ordering(tmp_path):
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(tmp_path), metrics=metrics,
                        inline=True) as sched:
        job = sched.submit(AnalysisRequest("ora"))
        assert sched.wait([job], timeout=120)
    names = [e["event"] for e in job.events_after(0)]
    assert names == ["submitted", "queued", "running", "done"]
    seqs = [e["seq"] for e in job.events_after(0)]
    assert seqs == [1, 2, 3, 4]
    # a reader that saw seq 2 resumes with only the missing tail
    tail = job.events_after(2)
    assert [e["event"] for e in tail] == ["running", "done"]
    # terminal invariant: finished implies the terminal event is visible
    assert job.finished and names[-1] == "done"
    assert job.to_dict()["finished_at"] is not None


# -- metrics consistency ------------------------------------------------------

def test_metrics_snapshot_is_consistent_under_concurrent_writers():
    """Failure/shed taxonomy buckets must always sum to their totals in
    any snapshot taken while writer threads hammer the counters."""
    import threading
    metrics = ServiceMetrics()
    stop = threading.Event()

    def writer(kind):
        while not stop.is_set():
            metrics.incr_failure(kind)
            metrics.incr_shed(kind)

    threads = [threading.Thread(target=writer, args=(k,), daemon=True)
               for k in ("crash", "deadline", "transient", "error")]
    for t in threads:
        t.start()
    try:
        for _ in range(200):
            snap = metrics.snapshot()["counters"]
            fails = sum(v for k, v in snap.items()
                        if k.startswith("failures_")
                        and k != "failures_total")
            sheds = sum(v for k, v in snap.items()
                        if k.startswith("shed_") and k != "shed_total")
            assert fails == snap.get("failures_total", 0)
            assert sheds == snap.get("shed_total", 0)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=5)


# -- cross-job proc cache reuse -----------------------------------------------

def test_full_jobs_reuse_proc_cache_across_schedulers(tmp_path):
    """A second server process (fresh scheduler, same cache dir) running
    a *full* execution job must hit the per-procedure summary cache the
    first one filled — and produce a bit-identical artifact."""
    ref = execute_request(AnalysisRequest("ora"))    # cache-less reference
    cold = ServiceMetrics()
    with BatchScheduler(ArtifactStore(tmp_path, metrics=cold),
                        metrics=cold, inline=True) as sched:
        job = sched.submit(AnalysisRequest("ora"))
        assert sched.wait([job], timeout=120)
        first = sched.artifact(job)
    assert cold.counter("proc_cache_miss") > 0
    assert cold.counter("proc_cache_hit") == 0
    warm = ServiceMetrics()
    store = ArtifactStore(tmp_path, metrics=warm)
    store.clear()              # drop job artifacts; proc/ subtree remains
    with BatchScheduler(store, metrics=warm, inline=True) as sched:
        job = sched.submit(AnalysisRequest("ora"))
        assert sched.wait([job], timeout=120)
        second = sched.artifact(job)
        assert not job.cached                        # actually recomputed
    assert warm.counter("proc_cache_hit") > 0        # ...from warm summaries
    assert canonical_json(first) == canonical_json(second) \
        == canonical_json(ref)


# -- asyncio front end --------------------------------------------------------

@pytest.fixture(scope="module")
def aserver():
    from repro.service import AsyncAnalysisServer
    with AsyncAnalysisServer(inline=True, shards=2) as srv:
        yield srv


def test_async_server_api_is_byte_compatible(aserver):
    status, out = _call(aserver, "GET", "/healthz")
    assert (status, out) == (200, {"ok": True})
    status, out = _call(aserver, "POST", "/jobs", {"workload": "ora"})
    assert status == 202
    job = out["job"]
    assert job["state"] == "done" and job["shard"] in (0, 1)
    status, out = _call(aserver, "GET", f"/jobs/{job['id']}")
    assert status == 200 and out["artifact_ready"]
    status, art = _call(aserver, "GET", f"/artifacts/{job['key']}")
    assert status == 200 and art["execution"]["speedup"] > 1.0
    status, out = _call(aserver, "GET", "/corpus")
    assert status == 200
    assert {"mdg", "hydro", "ora"} <= {w["name"] for w in out["workloads"]}
    status, out = _call(aserver, "GET", "/metrics")
    assert status == 200 and "cache_hit_rate" in out
    assert [s["shard"] for s in out["shards"]] == [0, 1]
    # error paths behave like the threaded server
    assert _call(aserver, "GET", "/jobs/job-999999")[0] == 404
    assert _call(aserver, "GET", "/no/such/route")[0] == 404
    status, out = _call(aserver, "POST", "/jobs", {"workload": "nope"})
    assert status == 400 and "unknown workload" in out["error"]


def test_async_server_events_snapshot_and_after(aserver):
    status, out = _call(aserver, "POST", "/jobs", {"workload": "track"})
    assert status == 202
    jid = out["job"]["id"]
    status, out = _call(aserver, "GET", f"/jobs/{jid}/events")
    assert status == 200 and out["finished"]
    names = [e["event"] for e in out["events"]]
    assert names[0] == "submitted" and names[-1] in ("done", "failed")
    seq = out["events"][1]["seq"]
    status, out = _call(aserver, "GET",
                        f"/jobs/{jid}/events?after={seq}")
    assert status == 200
    assert all(e["seq"] > seq for e in out["events"])


def test_async_server_streams_sse_events(aserver):
    import http.client
    status, out = _call(aserver, "POST", "/jobs", {"workload": "ora"})
    jid = out["job"]["id"]
    conn = http.client.HTTPConnection(aserver.host, aserver.port,
                                      timeout=30)
    try:
        conn.request("GET", f"/jobs/{jid}/events",
                     headers={"Accept": "text/event-stream"})
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type") == "text/event-stream"
        body = resp.read().decode()
    finally:
        conn.close()
    frames = [json.loads(line[6:]) for line in body.splitlines()
              if line.startswith("data: ") and line != "data: {}"]
    names = [f["event"] for f in frames]
    assert names[0] == "submitted" and names[-1] == "done"
    assert [f["seq"] for f in frames] == \
        sorted(f["seq"] for f in frames)
    assert "event: end" in body


def test_async_server_sheds_with_429_and_retry_after():
    import http.client
    from repro.service import AsyncAnalysisServer
    with AsyncAnalysisServer(inline=True, shards=2,
                             max_queue=0) as srv:
        conn = http.client.HTTPConnection(srv.host, srv.port,
                                          timeout=30)
        try:
            conn.request("POST", "/jobs",
                         body=json.dumps({"workload": "ora"}),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 429
            assert int(resp.getheader("Retry-After")) >= 1
            payload = json.loads(resp.read())
            assert payload["retry_after_s"] > 0
        finally:
            conn.close()
        assert srv.service.metrics.counter("shed_total") == 1
