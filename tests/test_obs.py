"""The observability layer: tracer core, exporters, and its contracts.

The three promises DESIGN.md makes for tracing are asserted here:

* **structure** — spans nest correctly (parent linkage, start ordering),
  survive the (de)serialization round-trip, and export to schema-valid
  Chrome ``trace_event`` JSON;
* **non-perturbation** — artifacts from traced runs are byte-identical
  to untraced runs across ≥5 corpus workloads, in-process and through
  the process pool;
* **near-zero disabled cost** — the NULL tracer allocates nothing per
  span and a phase's worth of disabled instrumentation is unmeasurable
  against the perf budget.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import (NULL_TRACER, PHASES, NullTracer, Tracer, activate,
                       get_tracer, phase_totals, render_tree, set_tracer,
                       span_index, to_chrome)
from repro.service import (AnalysisRequest, AnalysisServer, BatchScheduler,
                           ServiceMetrics, canonical_json, execute_request)

#: Small, fast corpus entries for the bit-identity sweep (≥5 workloads).
SMALL = ["ora", "track", "ear", "doduc", "dyfesm"]


# -- span mechanics ----------------------------------------------------------

def test_span_nesting_records_parent_linkage():
    tracer = Tracer()
    with tracer.span("outer", program="p") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                pass
        with tracer.span("sibling") as sibling:
            pass
    assert middle.parent_id == outer.span_id
    assert inner.parent_id == middle.span_id
    assert sibling.parent_id == outer.span_id
    assert outer.parent_id is None


def test_finished_spans_are_in_start_order():
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("c"):
            pass
    names = [s.name for s in tracer.finished_spans()]
    assert names == ["a", "b", "c"]      # start order, not finish order


def test_span_records_duration_and_tags():
    tracer = Tracer()
    with tracer.span("work", phase=1) as sp:
        time.sleep(0.01)
        sp.tag(items=3)
    done = tracer.finished_spans()[0]
    assert done.duration_s >= 0.009
    assert done.tags == {"phase": 1, "items": 3}


def test_span_dict_round_trip():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner", k="v"):
            pass
    dicts = tracer.to_dicts()
    other = Tracer()
    other.adopt(dicts)
    again = other.to_dicts()
    for a, b in zip(dicts, again):
        assert a == b


def test_exception_inside_span_still_finishes_it():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    names = {s.name for s in tracer.finished_spans()}
    assert names == {"outer", "inner"}
    assert tracer.current() is None      # stack fully unwound


def test_activation_is_scoped_and_restores_previous():
    assert get_tracer() is NULL_TRACER
    outer, inner = Tracer(), Tracer()
    with activate(outer):
        assert get_tracer() is outer
        with activate(inner):
            assert get_tracer() is inner
        assert get_tracer() is outer
    assert get_tracer() is NULL_TRACER


def test_activation_is_thread_local():
    tracer = Tracer()
    seen = {}

    def probe():
        seen["other"] = get_tracer()

    with activate(tracer):
        t = threading.Thread(target=probe)
        t.start()
        t.join()
        assert get_tracer() is tracer
    assert seen["other"] is NULL_TRACER


def test_concurrent_threads_keep_independent_stacks():
    tracer = Tracer()
    barrier = threading.Barrier(2)
    errors = []

    def worker(name):
        try:
            with activate(tracer):
                with tracer.span(name) as sp:
                    barrier.wait(timeout=5)
                    assert tracer.current() is sp
        except Exception as exc:         # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(f"t{i}",))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert {s.name for s in tracer.finished_spans()} == {"t0", "t1"}


def test_export_context_parents_child_roots_onto_current_span():
    parent = Tracer()
    with parent.span("submit") as sp:
        ctx = parent.export_context()
    child = Tracer.from_context(ctx)
    assert child.trace_id == parent.trace_id
    with child.span("job"):
        pass
    job = child.finished_spans()[0]
    assert job.parent_id == sp.span_id


# -- the disabled fast path --------------------------------------------------

def test_null_tracer_is_allocation_free_and_silent():
    assert get_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled
    spans = {id(NULL_TRACER.span("a")), id(NULL_TRACER.span("b", k=1))}
    assert len(spans) == 1               # one shared no-op span object
    with NULL_TRACER.span("phase") as sp:
        sp.tag(ops=123)
    assert NULL_TRACER.finished_spans() == []
    assert NULL_TRACER.to_dicts() == []
    assert NULL_TRACER.export_context() is None
    assert NullTracer.from_context(None) is NULL_TRACER


def test_disabled_tracing_overhead_smoke():
    """10k disabled phase-spans must cost well under the perf budget.

    The real gate is scripts/perf_check.py (<5% ops/sec); this is the
    fast in-suite canary with a deliberately generous bound."""
    t0 = time.perf_counter()
    for _ in range(10_000):
        with get_tracer().span("phase") as sp:
            sp.tag(x=1)
    elapsed = time.perf_counter() - t0
    assert elapsed < 0.5, f"10k disabled spans took {elapsed:.3f}s"


# -- exporters ---------------------------------------------------------------

def _pipeline_trace(workload="ora", **options):
    tracer = Tracer()
    with activate(tracer):
        execute_request(AnalysisRequest(workload, options=options))
    return tracer


def test_chrome_export_schema_is_valid():
    tracer = _pipeline_trace()
    doc = to_chrome(tracer.to_dicts())
    # survives a JSON round trip, the format consumers require
    doc = json.loads(json.dumps(doc))
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert complete and meta
    for e in complete:
        assert isinstance(e["ts"], int) and isinstance(e["dur"], int)
        assert e["dur"] >= 1
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert e["cat"] == "repro"
        assert "span_id" in e["args"]
    for e in meta:
        assert e["name"] in ("process_name", "thread_name")
    names = {e["name"] for e in complete}
    assert {"parse", "build", "instrument.profile", "instrument.dyndep",
            "guru", "execute_request"} <= names
    assert names <= set(PHASES) | {"parallelize", "execute", "codegen",
                                   "parallel_exec", "snapshot", "slice"}


def test_chrome_export_names_shard_lanes():
    """Submit spans tagged with a shard id surface as named lanes in
    the Chrome export, so per-shard load reads off the timeline."""
    from repro.service import ArtifactStore, ShardedScheduler
    tracer = Tracer()
    with ShardedScheduler(ArtifactStore(None), shards=2, inline=True,
                          tracer=tracer) as sched:
        jobs = [sched.submit(AnalysisRequest(n))
                for n in ("ora", "track", "ear")]
        assert sched.wait(jobs, timeout=120)
        shards_hit = {j.shard for j in jobs}
    spans = tracer.to_dicts()
    tagged = {s["tags"]["shard"] for s in spans
              if s["name"] == "submit" and "shard" in (s["tags"] or {})}
    assert tagged == shards_hit
    doc = to_chrome(spans)
    lanes = {e["args"]["name"] for e in doc["traceEvents"]
             if e["name"] == "thread_name"}
    assert lanes and lanes <= {f"shard-{i}" for i in shards_hit}


def test_pipeline_spans_nest_under_execute_request():
    # slicing is demand-driven now: ask for the guru targets' slices
    tracer = _pipeline_trace("mdg", slice=["targets"])
    spans = tracer.to_dicts()
    idx = span_index(spans)
    roots = [s for s in spans if s["parent_id"] is None]
    assert [r["name"] for r in roots] == ["execute_request"]
    for s in spans:
        if s["parent_id"] is not None:
            assert s["parent_id"] in idx
    # mdg has Guru targets, so the slice phase must appear
    assert "slice" in {s["name"] for s in spans}
    # parse nests under build
    parse = next(s for s in spans if s["name"] == "parse")
    assert idx[parse["parent_id"]]["name"] == "build"


def test_render_tree_and_phase_totals():
    tracer = _pipeline_trace()
    spans = tracer.to_dicts()
    lines = render_tree(spans)
    assert len(lines) == len(spans)
    assert lines[0].startswith("execute_request")
    assert any("└─" in line for line in lines)
    totals = phase_totals(spans)
    assert totals["execute_request"]["count"] == 1
    assert totals["execute"]["count"] >= 3   # profile + dyndep + exec
    # the root span covers every phase, so it dominates totals
    assert totals["execute_request"]["total_s"] >= \
        totals["parse"]["total_s"]


def test_render_tree_min_ms_filters():
    tracer = Tracer()
    with tracer.span("root"):
        pass
    assert render_tree(tracer.to_dicts(), min_ms=1e6) == []


# -- the non-perturbation contract -------------------------------------------

@pytest.mark.parametrize("workload", SMALL)
def test_traced_artifacts_bit_identical_to_untraced(workload):
    request = AnalysisRequest(workload)
    untraced = execute_request(request)
    tracer = Tracer()
    with activate(tracer):
        traced = execute_request(AnalysisRequest(workload))
    assert tracer.finished_spans(), "tracer saw no spans"
    assert canonical_json(traced) == canonical_json(untraced)


def test_pool_traced_artifacts_bit_identical_to_untraced():
    names = SMALL[:3]
    untraced = [execute_request(AnalysisRequest(n)) for n in names]
    tracer = Tracer()
    with BatchScheduler(workers=2, tracer=tracer) as scheduler:
        arts = scheduler.batch([AnalysisRequest(n) for n in names])
    assert [canonical_json(a) for a in arts] == \
        [canonical_json(u) for u in untraced]


# -- trace flow through the scheduler ----------------------------------------

def test_inline_scheduler_records_per_job_trace():
    metrics = ServiceMetrics()
    scheduler = BatchScheduler(inline=True, metrics=metrics,
                               tracer=Tracer())
    job = scheduler.submit(AnalysisRequest("ora"))
    assert job.state == "done"
    spans = scheduler.trace(job.id)
    assert spans is not None
    names = {s["name"] for s in spans}
    assert {"job", "execute_request", "instrument.profile",
            "instrument.dyndep"} <= names
    # the job span parents onto the scheduler's submit span
    submit = next(s for s in scheduler.tracer.to_dicts()
                  if s["name"] == "submit")
    jobspan = next(s for s in spans if s["name"] == "job")
    assert jobspan["parent_id"] == submit["span_id"]
    # per-phase histograms were folded in
    hist = metrics.snapshot()["histograms"]
    assert "phase_execute_request" in hist
    assert hist["phase_execute_request"]["count"] == 1


def test_pool_scheduler_ships_spans_back_across_processes():
    tracer = Tracer()
    with BatchScheduler(workers=2, tracer=tracer) as scheduler:
        jobs = [scheduler.submit(AnalysisRequest(n))
                for n in ("ora", "track")]
        assert scheduler.wait(jobs, timeout=120)
        traces = [scheduler.trace(j.id) for j in jobs]
    import os
    parent_pid = os.getpid()
    for job, spans in zip(jobs, traces):
        assert job.state == "done"
        assert spans, f"no spans shipped back for {job.id}"
        pids = {s["pid"] for s in spans}
        assert parent_pid not in pids    # recorded inside the workers
    # adopted spans join the scheduler tracer's trace
    all_spans = tracer.to_dicts()
    assert {s["name"] for s in all_spans} >= {"submit", "job"}
    idx = span_index(all_spans)
    for s in all_spans:
        if s["name"] == "job":
            assert idx[s["parent_id"]]["name"] == "submit"


def test_untraced_scheduler_records_no_traces():
    scheduler = BatchScheduler(inline=True)   # NULL_TRACER default
    job = scheduler.submit(AnalysisRequest("ora"))
    assert job.state == "done"
    assert scheduler.trace(job.id) is None


def test_trace_store_is_bounded():
    scheduler = BatchScheduler(inline=True, tracer=Tracer(), max_traces=2)
    jobs = [scheduler.submit(AnalysisRequest("ora", options={"tag": i}))
            for i in range(4)]
    kept = [j.id for j in jobs if scheduler.trace(j.id) is not None]
    assert kept == [jobs[-2].id, jobs[-1].id]


# -- the HTTP surface --------------------------------------------------------

def _get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode())


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.loads(resp.read().decode())


def test_trace_endpoint_serves_per_job_spans():
    with AnalysisServer(inline=True) as server:
        status, body = _post(server.url + "/jobs", {"workload": "ora"})
        assert status == 202
        job_id = body["job"]["id"]
        status, doc = _get(server.url + f"/trace/{job_id}")
        assert status == 200
        assert doc["job_id"] == job_id
        names = {s["name"] for s in doc["spans"]}
        assert {"job", "execute_request"} <= names
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/trace/job-999999")
        assert err.value.code == 404
        # histograms visible on /metrics
        status, snap = _get(server.url + "/metrics")
        assert any(k.startswith("phase_") for k in snap["histograms"])


def test_service_tracing_can_be_disabled():
    from repro.service.server import AnalysisService
    service = AnalysisService(inline=True, trace=False)
    try:
        job = service.scheduler.submit(AnalysisRequest("ora"))
        assert job.state == "done"
        assert service.scheduler.trace(job.id) is None
    finally:
        service.close()


# -- metrics histograms ------------------------------------------------------

def test_histogram_buckets_and_snapshot():
    metrics = ServiceMetrics()
    for v in (0.0001, 0.003, 0.003, 0.7, 100.0):
        metrics.observe_histogram("phase_x", v)
    hist = metrics.snapshot()["histograms"]["phase_x"]
    assert hist["count"] == 5
    assert hist["buckets"]["le_0.001"] == 1
    assert hist["buckets"]["le_0.005"] == 2
    assert hist["buckets"]["le_1"] == 1
    assert hist["buckets"]["inf"] == 1
    assert hist["sum_s"] == pytest.approx(100.7062, abs=1e-3)


def test_record_phases_folds_spans_into_histograms():
    metrics = ServiceMetrics()
    tracer = Tracer()
    with tracer.span("parse"):
        pass
    with tracer.span("instrument.dyndep"):
        pass
    metrics.record_phases(tracer.to_dicts())
    hist = metrics.snapshot()["histograms"]
    assert set(hist) == {"phase_parse", "phase_instrument.dyndep"}
    assert hist["phase_parse"]["count"] == 1


# -- hygiene -----------------------------------------------------------------

@pytest.fixture(autouse=True)
def _reset_active_tracer():
    yield
    set_tracer(None)
    assert get_tracer() is NULL_TRACER
