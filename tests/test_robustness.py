"""Service hardening: deadlines, budgets, fault injection, degradation.

Every failure mode the scheduler claims to survive is injected here and
driven end-to-end (HTTP → scheduler → pool → artifact store):

* seeded :class:`FaultPlan` chaos — worker crash, transient exception,
  hang, slow-start, corrupt-artifact — and the one-shot directive layer,
* per-job **deadlines**: over-deadline jobs end ``failed`` with reason
  exactly ``"deadline exceeded"``, their in-flight slot is freed (an
  identical resubmit runs fresh), and sibling jobs still complete,
* unified **op-budget enforcement**: budget-exceeded jobs fail
  identically under both engines (same error string, same taxonomy
  bucket), inline and across the process pool,
* **graceful degradation**: single-flight pool rebuild (no rebuild
  storm), jittered backoff retries, the inline-fallback circuit breaker,
  and bounded finished-job retention,
* the determinism contract *under* injected crashes and retries.
"""

import json
import time

import pytest

from repro.service import (AnalysisRequest, AnalysisServer, ArtifactStore,
                           BatchScheduler, FaultPlan, ServiceMetrics,
                           TransientFault, apply_request_fault,
                           canonical_json, run_sequential,
                           validate_options)
from repro.service.jobs import MAX_OPS_CAP

SRC = """
      PROGRAM tiny
      DIMENSION a(40)
      DO 10 i = 1, 40
        a(i) = i * 2.0
10    CONTINUE
      s = 0.0
      DO 20 i = 1, 40
        s = s + a(i)
20    CONTINUE
      PRINT *, s
      END
"""


def _call(server, method, path, body=None):
    import urllib.error
    import urllib.request
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(server.url + path, data=data,
                                 method=method,
                                 headers={"Content-Type":
                                          "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _poll_job(server, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, out = _call(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        if out["job"]["state"] in ("done", "failed"):
            return out["job"]
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


# -- the fault plan -----------------------------------------------------------

def test_fault_plan_parse_and_seeded_determinism():
    a = FaultPlan.parse("crash=0.3,transient=0.2,seed=7")
    b = FaultPlan.parse("crash=0.3,transient=0.2,seed=7")
    kinds_a = [(d or "").split(":", 1)[0] for d in
               (a.draw() for _ in range(50))]
    kinds_b = [(d or "").split(":", 1)[0] for d in
               (b.draw() for _ in range(50))]
    assert kinds_a == kinds_b                    # replayable chaos
    assert "crash-once" in kinds_a and "transient-once" in kinds_a
    assert FaultPlan.parse("") is None and FaultPlan.parse(None) is None


def test_fault_plan_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.parse("meteor=0.5")
    with pytest.raises(ValueError, match="sum to <= 1"):
        FaultPlan.parse("crash=0.9,hang=0.9")
    with pytest.raises(ValueError, match="kind=rate"):
        FaultPlan.parse("crash")


def test_unknown_fault_directive_is_a_clean_error():
    with pytest.raises(ValueError, match="unknown fault directive"):
        apply_request_fault({"fault": "comet:1"})


def test_transient_once_fires_exactly_once(tmp_path):
    opts = {"fault": f"transient-once:{tmp_path / 'm'}"}
    with pytest.raises(TransientFault):
        apply_request_fault(opts)
    apply_request_fault(opts)                    # second call: no raise


def test_process_killing_faults_are_neutralized_outside_workers(tmp_path):
    """``crash``/``hang`` directives executing in the scheduler/server
    process (inline mode, the breaker-open inline fallback, the
    sequential reference) must be no-ops: a chaos plan degrades the
    service, it never ``os._exit``'s the serving process or stalls its
    thread.  This test would kill pytest outright if the guard broke."""
    from repro.service.faults import in_worker_process
    assert not in_worker_process()               # pytest is not a worker
    start = time.monotonic()
    apply_request_fault({"fault": "crash"})      # would os._exit(17)
    apply_request_fault({"fault": "hang:3600"})  # would stall 1 h
    apply_request_fault({"fault": "slow-start:3600"})
    assert time.monotonic() - start < 5.0
    # one-shot variants are *consumed* by neutralization: the marker is
    # claimed, so a later pool-side retry cannot fire the fault either
    marker = tmp_path / "c"
    apply_request_fault({"fault": f"crash-once:{marker}"})
    assert marker.exists()
    # unknown directives still raise, worker or not
    with pytest.raises(ValueError, match="unknown fault directive"):
        apply_request_fault({"fault": "comet:1"})


def test_inline_scheduler_survives_crash_and_hang_directives():
    """End-to-end version: an inline scheduler fed process-killing
    directives completes the jobs instead of dying ('degraded but
    alive' — the promise the circuit-breaker fallback makes)."""
    with BatchScheduler(ArtifactStore(None), inline=True) as sched:
        for i, fault in enumerate(["crash", "hang:3600"]):
            job = sched.submit(AnalysisRequest(
                "ora", options={"fault": fault, "salt": str(i)}))
            assert job.state == "done", (fault, job.error)


# -- option validation at the server boundary ---------------------------------

def test_validate_options_caps_max_ops_and_rejects_garbage():
    assert validate_options(None) is None
    out = validate_options({"max_ops": 10 ** 18, "deadline_s": "2.5"})
    assert out["max_ops"] == MAX_OPS_CAP and out["deadline_s"] == 2.5
    for bad in [{"max_ops": 0}, {"max_ops": "many"},
                {"deadline_s": -1}, {"deadline_s": "soon"},
                {"engine": "quantum"}, {"machine": "abacus"}, [1, 2]]:
        with pytest.raises(ValueError):
            validate_options(bad)


def test_fault_option_is_rejected_at_the_boundary_by_default():
    """A production server that never enabled injection must 400 a
    chaos directive — any HTTP client could otherwise crash workers
    until the breaker opens (and, before the worker-only guard, kill
    the server itself via the inline fallback)."""
    with pytest.raises(ValueError, match="fault injection is not"):
        validate_options({"fault": "crash"})
    with AnalysisServer(inline=True) as server:          # no --inject
        for directive in ["crash", "hang:3600", "corrupt-artifact"]:
            status, out = _call(server, "POST", "/jobs",
                                {"workload": "ora",
                                 "options": {"fault": directive}})
            assert status == 400, f"fault {directive!r} -> {status}"
            assert "fault injection is not enabled" in out["error"]


def test_fault_option_allowed_and_kind_checked_when_enabled():
    out = validate_options({"fault": "slow-start:0.01"},
                           allow_faults=True)
    assert out["fault"] == "slow-start:0.01"
    with pytest.raises(ValueError, match="unknown fault directive kind"):
        validate_options({"fault": "meteor:1"}, allow_faults=True)
    with AnalysisServer(inline=True, allow_faults=True) as server:
        status, out = _call(server, "POST", "/jobs",
                            {"workload": "ora",
                             "options": {"fault": "meteor:1"}})
        assert status == 400 and "unknown fault directive" in out["error"]
        status, out = _call(server, "POST", "/jobs",
                            {"workload": "ora",
                             "options": {"fault": "transient"}})
        assert status == 202
        job = _poll_job(server, out["job"]["id"])
        assert job["state"] == "failed"          # inline: no retry


def test_http_rejects_bad_options_and_non_object_bodies():
    with AnalysisServer(inline=True) as server:
        for bad_opts in [{"max_ops": 0}, {"engine": "quantum"},
                         {"deadline_s": -3}]:
            status, out = _call(server, "POST", "/jobs",
                                {"workload": "ora", "options": bad_opts})
            assert status == 400 and "error" in out
        # non-object JSON bodies must 400, never 500 (AttributeError)
        for raw in [[1, 2], "x", 7, None]:
            status, out = _call(server, "POST", "/jobs", raw)
            assert status == 400, f"body {raw!r} -> {status}"
            assert "error" in out


# -- unified op-budget enforcement --------------------------------------------

def test_budget_exceeded_identical_across_engines_inline():
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics,
                        inline=True) as sched:
        jobs = [sched.submit(AnalysisRequest(
                    source=SRC, program_name="tiny",
                    options={"engine": engine, "max_ops": 50}))
                for engine in ("compiled", "tree")]
    for job in jobs:
        assert job.state == "failed"
        assert job.failure_kind == "budget"
    # the unified error: byte-identical across engines
    assert jobs[0].error == jobs[1].error
    assert jobs[0].error == \
        "OpsBudgetExceeded: operation budget exceeded (max_ops=50)"
    assert metrics.counter("failures_budget") == 2
    assert metrics.counter("failures_total") == 2


def test_budget_exceeded_survives_the_process_pool(tmp_path):
    """OpsBudgetExceeded must pickle across the pool boundary intact
    (type, message, taxonomy) — not degrade into a bare RuntimeError."""
    with BatchScheduler(ArtifactStore(None), workers=1) as sched:
        job = sched.submit(AnalysisRequest(
            source=SRC, program_name="tiny", options={"max_ops": 50}))
        assert job.wait(120)
    assert job.state == "failed" and job.failure_kind == "budget"
    assert job.error == \
        "OpsBudgetExceeded: operation budget exceeded (max_ops=50)"


# -- deadlines ----------------------------------------------------------------

def test_deadline_kills_hung_job_but_siblings_complete(tmp_path):
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics, workers=2,
                        watchdog_interval_s=0.02) as sched:
        hang_opts = {"fault": f"hang-once:{tmp_path / 'h'}:60",
                     "deadline_s": 1.0}
        hung = sched.submit(AnalysisRequest("ora", options=hang_opts))
        siblings = [sched.submit(AnalysisRequest(w))
                    for w in ("track", "ear")]
        assert sched.wait([hung, *siblings], timeout=120)
        # over-deadline job: failed, with the exact contractual reason
        assert hung.state == "failed"
        assert hung.error == "deadline exceeded"
        assert hung.failure_kind == "deadline"
        # sibling jobs complete despite the worker kill
        for sib in siblings:
            assert sib.state == "done", sib.error
        assert metrics.counter("jobs_deadline_exceeded") == 1
        assert metrics.counter("failures_deadline") == 1
        assert metrics.counter("workers_terminated") >= 1
        # the slot was freed: an identical resubmit runs fresh (the
        # one-shot hang already fired, so this attempt succeeds)
        again = sched.submit(AnalysisRequest("ora", options=hang_opts))
        assert again.id != hung.id, "resubmit deduped onto a corpse"
        assert again.wait(120) and again.state == "done", again.error


def test_scheduler_default_deadline_applies(tmp_path):
    with BatchScheduler(ArtifactStore(None), workers=1,
                        default_deadline_s=1.0,
                        watchdog_interval_s=0.02) as sched:
        job = sched.submit(AnalysisRequest(
            "ora", options={"fault": f"hang-once:{tmp_path / 'h'}:60"}))
        assert job.wait(120)
    assert job.state == "failed" and job.error == "deadline exceeded"
    assert job.deadline_s == 1.0


def test_deadline_over_http_end_to_end(tmp_path):
    # allow_faults: the hang directive must pass the boundary validator
    with AnalysisServer(workers=1, allow_faults=True) as server:
        status, out = _call(server, "POST", "/jobs", {
            "workload": "ora",
            "options": {"fault": f"hang-once:{tmp_path / 'h'}:60",
                        "deadline_s": 1.0}})
        assert status == 202
        job = _poll_job(server, out["job"]["id"])
        assert job["state"] == "failed"
        assert job["error"] == "deadline exceeded"
        assert job["failure_kind"] == "deadline"
        status, snap = _call(server, "GET", "/metrics")
        assert snap["counters"]["jobs_deadline_exceeded"] == 1


# -- transient faults and backoff ---------------------------------------------

def test_transient_fault_is_retried_with_backoff(tmp_path):
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics, workers=1,
                        retry_backoff_s=0.01) as sched:
        job = sched.submit(AnalysisRequest(
            "ora",
            options={"fault": f"transient-once:{tmp_path / 't'}"}))
        assert job.wait(120)
    assert job.state == "done", job.error
    assert job.attempts == 2
    assert metrics.counter("transient_faults") == 1
    assert metrics.counter("jobs_retried") == 1
    assert metrics.counter("pool_rebuilds") == 0     # no pool churn


def test_persistent_transient_fault_exhausts_retries():
    with BatchScheduler(ArtifactStore(None), workers=1, max_retries=1,
                        retry_backoff_s=0.01) as sched:
        job = sched.submit(AnalysisRequest(
            "ora", options={"fault": "transient"}))
        assert job.wait(120)
    assert job.state == "failed"
    assert job.failure_kind == "transient"
    assert "TransientFault" in job.error


def test_slow_start_fault_completes_normally():
    with BatchScheduler(ArtifactStore(None), workers=1) as sched:
        job = sched.submit(AnalysisRequest(
            "ora", options={"fault": "slow-start:0.05"}))
        assert job.wait(120)
    assert job.state == "done", job.error


# -- corrupt artifacts --------------------------------------------------------

def test_corrupt_artifact_fault_quarantines_and_recomputes(tmp_path):
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path / "cache", metrics=metrics)
    with BatchScheduler(store, metrics=metrics, inline=True) as sched:
        req = AnalysisRequest("ora",
                              options={"fault": "corrupt-artifact"})
        job = sched.submit(req)
        assert job.state == "done", job.error
        assert metrics.counter("faults_corrupted") == 1
        # the poisoned entry is a miss (quarantined), never a crash
        assert store.get(job.key) is None
        assert metrics.counter("cache_corrupt") == 1
        # resubmitting recomputes instead of wedging on the corpse
        again = sched.submit(AnalysisRequest(
            "ora", options={"fault": "corrupt-artifact"}))
        assert again.state == "done" and again.id != job.id


# -- graceful degradation -----------------------------------------------------

def test_pool_rebuild_is_single_flight_under_mass_breakage(tmp_path):
    """One worker death breaks every in-flight future; the old code
    rebuilt the pool once per broken future.  Now: exactly one rebuild,
    and every survivor completes on the fresh pool."""
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics, workers=2,
                        retry_backoff_s=0.01) as sched:
        jobs = [sched.submit(AnalysisRequest(
                    "ora", options={"fault": "slow-start:0.3",
                                    "salt": str(i)}))
                for i in range(3)]
        jobs.append(sched.submit(AnalysisRequest(
            "ora", options={"fault": f"crash-once:{tmp_path / 'c'}"})))
        assert sched.wait(jobs, timeout=180)
    for job in jobs:
        assert job.state == "done", (job.id, job.error)
    assert metrics.counter("worker_crashes") == 1
    assert metrics.counter("pool_rebuilds") == 1, "rebuild storm!"


def test_circuit_breaker_falls_back_to_inline(tmp_path):
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics, workers=1,
                        breaker_threshold=1, breaker_cooldown_s=300.0,
                        retry_backoff_s=0.01) as sched:
        job = sched.submit(AnalysisRequest(
            "ora", options={"fault": f"crash-once:{tmp_path / 'c'}"}))
        assert job.wait(120)
        assert job.state == "done", job.error
        assert metrics.counter("breaker_opened") == 1
        assert metrics.counter("jobs_inline_fallback") == 1
        # while open, new jobs keep degrading to inline — still served
        j2 = sched.submit(AnalysisRequest("track"))
        assert j2.wait(120) and j2.state == "done"
        assert metrics.counter("jobs_inline_fallback") == 2


def test_circuit_breaker_half_open_probe_closes(tmp_path):
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics, workers=1,
                        breaker_threshold=1, breaker_cooldown_s=0.0,
                        retry_backoff_s=0.01) as sched:
        job = sched.submit(AnalysisRequest(
            "ora", options={"fault": f"crash-once:{tmp_path / 'c'}"}))
        assert job.wait(120)
    assert job.state == "done", job.error
    # cooldown elapsed instantly: the retry probed the pool and closed
    assert metrics.counter("breaker_closed") == 1
    assert metrics.counter("jobs_inline_fallback") == 0


def test_half_open_admits_exactly_one_probe():
    """When the cooldown expires the breaker half-opens for a *single*
    probe dispatch; concurrent dispatches keep degrading inline until
    the probe settles, so a burst cannot storm a possibly-bad pool."""
    with BatchScheduler(ArtifactStore(None), workers=1) as sched:
        # force the breaker open with an already-expired cooldown
        with sched._lock:
            sched._breaker_open_until = time.monotonic() - 1.0
        assert sched._pool_allowed() is True      # the one probe
        assert sched._pool_allowed() is False     # everyone else: inline
        assert sched._pool_allowed() is False
        # probe settles in breakage: recycle clears the flag and re-arms
        with sched._lock:
            gen = sched._generation
        sched._get_pool()
        sched._recycle_pool(gen)
        assert sched._probing is False


def test_injected_fault_shares_content_key_with_clean_request():
    """``fault`` is a non-semantic option: an injected job must dedupe/
    cache under the same content address as its clean twin (and
    ``corrupt-artifact`` must poison a key clean requests actually
    read), and the directive must not leak into the artifact payload."""
    clean = AnalysisRequest("ora")
    faulted = AnalysisRequest("ora", options={"fault": "corrupt-artifact"})
    assert clean.key() == faulted.key()
    # directive never leaks into the recorded artifact payload (the
    # artifact shares its key — so must share its bytes — with the
    # clean twin's; slow-start is neutralized outside pool workers)
    from repro.service import execute_request
    with_fault = execute_request(AnalysisRequest(
        source=SRC, program_name="tiny",
        options={"fault": "slow-start:0.01"}))
    without = execute_request(AnalysisRequest(
        source=SRC, program_name="tiny"))
    assert "fault" not in with_fault["request"]["options"]
    assert canonical_json(with_fault) == canonical_json(without)


def test_chaos_corruption_hits_the_clean_cache_entry(tmp_path):
    """With fault excluded from the key, ``corrupt-artifact`` garbages
    the entry a subsequent *clean* request reads — the quarantine-and-
    recompute path is exercised by real traffic, not only by
    resubmitting the identical faulted request."""
    metrics = ServiceMetrics()
    store = ArtifactStore(tmp_path / "cache", metrics=metrics)
    with BatchScheduler(store, metrics=metrics, inline=True) as sched:
        bad = sched.submit(AnalysisRequest(
            "ora", options={"fault": "corrupt-artifact"}))
        assert bad.state == "done", bad.error
        clean = sched.submit(AnalysisRequest("ora"))
        assert clean.state == "done", clean.error
        assert clean.key == bad.key
        assert not clean.cached                  # recomputed, not served
        assert metrics.counter("cache_corrupt") == 1
        # and the recomputed artifact is back in the store, readable
        assert store.get(clean.key) is not None


def test_finished_job_retention_is_bounded():
    metrics = ServiceMetrics()
    with BatchScheduler(ArtifactStore(None), metrics=metrics,
                        inline=True, max_jobs=3) as sched:
        jobs = [sched.submit(AnalysisRequest(
                    "ora", options={"salt": str(i)}))
                for i in range(6)]
        assert len(sched.jobs()) <= 3
        assert metrics.counter("jobs_evicted") >= 3
        # oldest finished jobs evicted → lookup is a miss (HTTP: 404)
        assert sched.job(jobs[0].id) is None
        # the newest job survives
        assert sched.job(jobs[-1].id) is jobs[-1]


# -- seeded chaos + the determinism contract ----------------------------------

def test_fault_plan_injected_scheduler_still_serves():
    metrics = ServiceMetrics()
    plan = FaultPlan({"transient": 0.5}, seed=3)
    with BatchScheduler(ArtifactStore(None), metrics=metrics, workers=2,
                        fault_plan=plan, retry_backoff_s=0.01) as sched:
        jobs = [sched.submit(AnalysisRequest(
                    "ora", options={"salt": str(i)})) for i in range(4)]
        assert sched.wait(jobs, timeout=180)
    for job in jobs:
        assert job.state == "done", (job.id, job.error)
    assert metrics.counter("faults_injected") >= 1
    assert plan.drawn >= 1


def test_batch_determinism_holds_under_crash_and_retry(tmp_path):
    """The acceptance bar: bit-identical batch-vs-sequential artifacts
    even when a worker crash forces a backoff retry mid-batch."""
    requests = [
        AnalysisRequest("ora"),
        AnalysisRequest("track",
                        options={"fault":
                                 f"crash-once:{tmp_path / 'c'}"}),
        AnalysisRequest("ear"),
    ]
    with BatchScheduler(ArtifactStore(tmp_path / "cache"), workers=2,
                        retry_backoff_s=0.01) as sched:
        pooled = sched.batch(requests, timeout=180)
    assert all(a is not None for a in pooled)
    # the crash-once marker is claimed, so the sequential reference
    # executes the identical requests without faulting
    sequential = run_sequential(requests)
    for got, want in zip(pooled, sequential):
        assert canonical_json(got) == canonical_json(want)
