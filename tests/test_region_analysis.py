"""The ⟨R,E,W,M⟩ framework: transfer/meet/closure, interprocedural mapping."""

from repro.analysis import ArrayDataFlow, SymbolicAnalysis
from repro.analysis.summaries import (VarSummary, close_over_loop, meet,
                                      transfer)
from repro.ir import build_program
from repro.poly import LinExpr, Section, range_section


# -- operator algebra ---------------------------------------------------------

def test_transfer_kills_exposed_reads():
    first = VarSummary.for_write(range_section(1, 10), must=True)
    then = VarSummary.for_read(range_section(5, 15))
    out = transfer(first, then)
    assert not out.exposed.intersects(range_section(5, 10))
    assert out.exposed.intersects(range_section(11, 15))
    assert out.read.contains(range_section(5, 15))


def test_transfer_conditional_write_does_not_kill():
    first = VarSummary.for_write(range_section(1, 10), must=False)
    then = VarSummary.for_read(range_section(5, 8))
    out = transfer(first, then)
    assert out.exposed.intersects(range_section(5, 8))


def test_meet_intersects_must():
    a = VarSummary.for_write(range_section(1, 10), must=True)
    b = VarSummary.for_write(range_section(5, 20), must=True)
    out = meet(a, b)
    assert out.must_write.contains(range_section(5, 10))
    assert not out.must_write.intersects(range_section(1, 4))
    # contains() is conservative across disjuncts; check halves
    assert out.may_write.contains(range_section(1, 10))
    assert out.may_write.contains(range_section(5, 20))


def test_closure_projects_index_with_bounds():
    i = LinExpr.var("i")
    vs = VarSummary.for_write(Section.point([i]), must=True)
    closed = close_over_loop(vs, "i", LinExpr.constant(1),
                             LinExpr.constant(8), 1)
    assert closed.must_write.contains(range_section(1, 8))
    assert not closed.may_write.intersects(range_section(9, 9))


def test_closure_nonunit_step_drops_must():
    i = LinExpr.var("i")
    vs = VarSummary.for_write(Section.point([i]), must=True)
    closed = close_over_loop(vs, "i", LinExpr.constant(1),
                             LinExpr.constant(9), 2)
    assert closed.must_write.is_empty()
    assert not closed.may_write.is_empty()


# -- whole-program summaries --------------------------------------------------

def test_callee_writes_map_to_caller(simple_program):
    df = ArrayDataFlow(simple_program)
    summ = df.proc_summary["main"]
    key = ("v", "main", "a")
    vs = summ.vars[key]
    # fill(a, n) must-writes a(1:n)
    assert not vs.must_write.is_empty()


def test_exposed_read_sharpening_psmoo_pattern():
    """Section 5.2.2.3: recurrence reads killed by subtracting writes."""
    prog = build_program("""
      PROGRAM t
      DIMENSION d(40,40), w(40,40)
      INTEGER il, jl
      il = 30
      jl = 30
      DO 50 k = 2, 10
        DO 20 j = 2, jl
          d(1,j) = 0.0
20      CONTINUE
        DO 30 i = 2, il
          DO 30 j = 2, jl
            d(i,j) = d(i-1,j) * 0.5 + 1.0
30      CONTINUE
        DO 40 i = 2, il
          DO 40 j = 2, jl
            w(i,j) = w(i,j) + d(i,j)
40      CONTINUE
50    CONTINUE
      PRINT *, w(3,3)
      END
""")
    df = ArrayDataFlow(prog)
    loop50 = prog.loop("t/50")
    body = df.loop_body_summary[loop50.stmt_id]
    vs = body.vars[("v", "t", "d")]
    # loop 30's exposed d(1, 2:jl) is killed by loop 20's must-write:
    # nothing of d is upwards-exposed at the k-iteration level
    assert vs.exposed.is_empty()


def test_element_offset_actual_mapping():
    """hydro's CALL init(aif3(k1), n): writes land at the offset."""
    prog = build_program("""
      PROGRAM t
      DIMENSION a(100)
      INTEGER k1
      k1 = 5
      CALL init1(a(k1), 10)
      x = a(7)
      END
      SUBROUTINE init1(q, n)
      DIMENSION q(*)
      DO 10 j = 1, n
        q(j) = j * 1.0
10    CONTINUE
      END
""")
    df = ArrayDataFlow(prog)
    summ = df.proc_summary["t"]
    vs = summ.vars[("v", "t", "a")]
    # writes cover a(5:14)
    assert vs.must_write.contains(range_section(5, 14))
    assert not vs.may_write.intersects(range_section(1, 4))
    assert not vs.may_write.intersects(range_section(15, 100))
    # the read of a(7) is therefore not upwards-exposed
    assert not vs.exposed.intersects(range_section(7, 7))


def test_common_flattening_distinguishes_members():
    prog = build_program("""
      PROGRAM t
      COMMON /b/ x(10), y(10)
      DO 10 i = 1, 10
        x(i) = 1.0
10    CONTINUE
      s = y(3)
      END
""")
    df = ArrayDataFlow(prog)
    vs = df.proc_summary["t"].vars[("cm", "b")]
    # x occupies flat [0,9], y [10,19]; the y-read must stay exposed
    assert vs.exposed.intersects(range_section(12, 12))
    assert not vs.may_write.intersects(range_section(10, 19))


def test_differently_shaped_views_alias_exactly():
    """hydro2d: vz(10,10) vs vz1(0:10,9) share flat storage."""
    prog = build_program("""
      PROGRAM t
      COMMON /v/ vz(10,10)
      CALL w1
      s = vz(1,1)
      END
      SUBROUTINE w1
      COMMON /v/ vz1(0:10,9)
      vz1(0,1) = 7.0
      END
""")
    df = ArrayDataFlow(prog)
    vs = df.proc_summary["t"].vars[("cm", "v")]
    # vz1(0,1) is flat element 0 == vz(1,1): the read is NOT exposed
    assert not vs.exposed.intersects(range_section(0, 0))


def test_conditional_write_stays_may():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(10), b(10)
      DO 10 i = 1, 10
        IF (b(i) .GT. 0.0) THEN
          a(i) = 1.0
        ENDIF
10    CONTINUE
      x = a(3)
      END
""")
    df = ArrayDataFlow(prog)
    vs = df.proc_summary["t"].vars[("v", "t", "a")]
    assert vs.must_write.is_empty()
    assert vs.exposed.intersects(range_section(3, 3))


def test_cycle_weakens_following_musts():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(10), b(10)
      DO 10 i = 1, 10
        IF (b(i) .GT. 0.0) GO TO 10
        a(i) = 1.0
10    CONTINUE
      x = a(3)
      END
""")
    df = ArrayDataFlow(prog)
    vs = df.proc_summary["t"].vars[("v", "t", "a")]
    assert vs.must_write.is_empty()


def test_self_assignment_regression():
    """Soundness regression found by the fuzzer: `a(j) = a(j)` carries a
    same-iteration anti-dependence, so the 5.2.2.3 sharpening must not
    erase the exposed read (which really does flow from the previous
    outer-loop iteration)."""
    prog = build_program("""
      PROGRAM t
      DIMENSION a(40)
      DO 5 i = 1, 40
        a(i) = i * 0.5
5     CONTINUE
      DO 100 i = 2, 12
        DO 40 j = 2, 8
          a(j) = a(j)
40      CONTINUE
100   CONTINUE
      PRINT *, a(3)
      END
""")
    df = ArrayDataFlow(prog)
    loop100 = prog.loop("t/100")
    vs = df.loop_body_summary[loop100.stmt_id].vars[("v", "t", "a")]
    assert not vs.exposed.is_empty()
    from repro.parallelize import Parallelizer
    plan = Parallelizer(prog).plan()
    assert not plan.plan_by_name("t/100").parallel
