"""End-to-end stories: the paper's case studies as executable narratives."""

import pytest

from repro.explorer import ExplorerSession
from repro.parallelize import Parallelizer, contract_in_program, split_pass
from repro.runtime import (ALPHASERVER_8400, ParallelExecutor, SGI_ORIGIN,
                           run_program)
from repro.workloads import get


def test_mdg_case_study_section_4_1():
    """Section 4.1 beginning to end: automatic -> Guru -> slice -> assert
    -> parallel, with the paper's qualitative outcomes."""
    w = get("mdg")
    prog = w.build()
    sess = ExplorerSession(prog, inputs=w.inputs, use_liveness=False)

    # 4.1.1 automatic parallelization shows no speedup
    auto = sess.run_automatic()
    assert auto.speedup == pytest.approx(1.0, abs=0.15)
    assert sess.coverage() > 0.6          # but coverage is respectable

    # 4.1.2 the Guru singles out interf/1000: dominant, no dynamic deps
    top = sess.guru.targets()[0]
    assert top.name == "interf/1000"
    assert top.coverage > 0.8
    assert top.dynamic_deps == 0
    assert top.static_deps >= 1

    # 4.1.3 the slices focus the user on a fraction of the loop
    slices = sess.slices_for(top.loop)
    assert slices
    loop_lines = sess.slicer.loop_line_count(top.loop)
    focused = slices[0].program_slice_ar
    region = sess.slicer.region_of_loop(top.loop)
    assert focused.lines_within(region) < loop_lines

    # 4.1.4 one RL assertion (checker fans out to rs/kc) parallelizes it
    outcomes, user = sess.apply_assertions(w.user_assertions)
    assert all(o.accepted for o in outcomes)
    assert sess.plan.plan_by_name("interf/1000").parallel
    assert user.speedup > 4.0             # paper: 6x on 8 processors
    ex = ParallelExecutor(prog, sess.plan, ALPHASERVER_8400,
                          inputs=w.inputs)
    assert ex.results_for([4])[4].speedup > 2.5   # paper: 4x on 4


def test_hydro_case_study_section_4_2():
    w = get("hydro")
    prog = w.build()
    sess = ExplorerSession(prog, inputs=w.inputs, use_liveness=False)
    auto = sess.run_automatic()
    outcomes, user = sess.apply_assertions(w.user_assertions)
    parallelized = [nm for nm in
                    ("update/1000", "vsetuv/85", "vsetuv/105",
                     "vsetuv/155", "vqterm/85", "vsetgc/200")
                    if sess.plan.plan_by_name(nm).parallel]
    assert len(parallelized) == 6         # paper: six user loops
    assert not sess.plan.plan_by_name("vh2200/1000").parallel
    assert user.speedup > auto.speedup * 1.5


def test_flo88_contraction_story_section_5_6():
    """Fig 5-12's shape: contraction transforms scaling on the Origin."""
    w = get("flo88_fused")
    prog = w.build()
    plan = Parallelizer(prog, assertions=w.user_assertions).plan()
    before = ParallelExecutor(prog, plan, SGI_ORIGIN,
                              inputs=w.inputs).results_for([32])[32]

    result = contract_in_program(prog)
    contracted = {v for _, v, _ in result.contracted}
    assert {"d", "t"} <= contracted
    plan2 = Parallelizer(prog, assertions=w.user_assertions).plan()
    after = ParallelExecutor(prog, plan2, SGI_ORIGIN,
                             inputs=w.inputs).results_for([32])[32]
    assert before.speedup < 10            # memory-bound before
    assert after.speedup > before.speedup * 2   # paper: 6.3 -> 19.6


def test_hydro2d_split_story_section_5_5():
    w = get("hydro2d")
    base = run_program(w.build(), w.inputs)
    prog = w.build()
    report = split_pass(prog)
    assert report.total_splits() >= 2     # paper: 5 splits
    # semantics preserved and footprint-driven time no worse
    after = run_program(prog, w.inputs)
    assert after.outputs == pytest.approx(base.outputs)
    plan = Parallelizer(prog).plan()
    res = ParallelExecutor(prog, plan, ALPHASERVER_8400,
                           inputs=w.inputs).results_for([4])[4]
    prog0 = w.build()
    plan0 = Parallelizer(prog0).plan()
    res0 = ParallelExecutor(prog0, plan0, ALPHASERVER_8400,
                            inputs=w.inputs).results_for([4])[4]
    assert res.speedup >= res0.speedup * 0.95


def test_liveness_ablation_changes_plans():
    """Fig 5-8's mechanism: full liveness parallelizes loops the ablated
    compiler cannot."""
    w = get("hydro")
    prog = w.build()
    without = Parallelizer(prog, use_liveness=False).plan()
    with_l = Parallelizer(prog, use_liveness=True).plan()
    gained = [l.name for l in with_l.parallel_loops()
              if not without.is_parallel(l)]
    assert gained


def test_reduction_ablation_collapses_embar():
    w = get("embar")
    prog = w.build()
    on = Parallelizer(prog, use_reductions=True).plan()
    off = Parallelizer(prog, use_reductions=False).plan()
    assert on.plan_by_name("embar/100").parallel
    assert not off.plan_by_name("embar/100").parallel
