"""Reduction recognition: syntactic forms and region-level validity."""

from repro.analysis.reduction import (classify_assignment, classify_if_minmax,
                                      scan_block_reductions)
from repro.ir import build_program
from repro.ir.statements import AssignStmt, IfStmt


def first_assign(src, name):
    prog = build_program(src)
    for s in prog.procedure(prog.main).statements():
        if isinstance(s, AssignStmt) and s.target.symbol.name == name:
            return s
    raise AssertionError(f"no assignment to {name}")


def test_scalar_sum():
    s = first_assign("""
      PROGRAM t
      DIMENSION a(10)
      DO 10 i = 1, 10
        s = s + a(i)
10    CONTINUE
      END
""", "s")
    upd = classify_assignment(s)
    assert upd is not None and upd.op == "+"


def test_sum_with_subtracted_terms():
    s = first_assign("""
      PROGRAM t
      DIMENSION a(10)
      s = s + a(1) - a(2)
      END
""", "s")
    upd = classify_assignment(s)
    assert upd is not None and upd.op == "+"
    assert len(upd.other_reads) == 2


def test_reversed_operand_order():
    s = first_assign("""
      PROGRAM t
      DIMENSION a(10)
      s = a(1) + s
      END
""", "s")
    assert classify_assignment(s).op == "+"


def test_product():
    s = first_assign("      PROGRAM t\n      p = p * 1.5\n      END\n", "p")
    assert classify_assignment(s).op == "*"


def test_array_element_sum():
    s = first_assign("""
      PROGRAM t
      DIMENSION b(10), a(10)
      DO 10 i = 1, 10
        b(3) = b(3) + a(i)
10    CONTINUE
      END
""", "b")
    upd = classify_assignment(s)
    assert upd is not None and upd.op == "+"


def test_indirect_sparse_update():
    s = first_assign("""
      PROGRAM t
      DIMENSION h(100), ind(10)
      INTEGER ind
      DO 10 i = 1, 10
        h(ind(i)) = h(ind(i)) + 1.0
10    CONTINUE
      END
""", "h")
    assert classify_assignment(s).op == "+"


def test_mismatched_indices_not_a_reduction():
    s = first_assign("""
      PROGRAM t
      DIMENSION h(100)
      DO 10 i = 2, 10
        h(i) = h(i-1) + 1.0
10    CONTINUE
      END
""", "h")
    assert classify_assignment(s) is None


def test_rhs_referencing_target_elsewhere_rejected():
    s = first_assign("""
      PROGRAM t
      DIMENSION h(100)
      h(1) = h(1) + h(2)
      END
""", "h")
    assert classify_assignment(s) is None


def test_min_max_intrinsics():
    s = first_assign("      PROGRAM t\n      m = min(m, 3.0)\n      END\n",
                     "m")
    assert classify_assignment(s).op == "min"
    s = first_assign("      PROGRAM t\n      m = max(2.0, m)\n      END\n",
                     "m")
    assert classify_assignment(s).op == "max"


def test_if_guarded_min():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(10)
      DO 10 i = 1, 10
        IF (a(i) .LT. tmin) tmin = a(i)
10    CONTINUE
      END
""")
    ifs = [s for s in prog.procedure("t").statements()
           if isinstance(s, IfStmt)]
    upd = classify_if_minmax(ifs[0])
    assert upd is not None and upd.op == "min"


def test_if_guarded_max_flipped_comparison():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(10)
      DO 10 i = 1, 10
        IF (tmax .LT. a(i)) tmax = a(i)
10    CONTINUE
      END
""")
    ifs = [s for s in prog.procedure("t").statements()
           if isinstance(s, IfStmt)]
    assert classify_if_minmax(ifs[0]).op == "max"


def test_scan_counts_all_updates():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(10), b(10)
      DO 10 i = 1, 10
        s = s + a(i)
        p = p * a(i)
        b(i) = b(i) + 1.0
        IF (a(i) .GT. mx) mx = a(i)
10    CONTINUE
      END
""")
    ups = scan_block_reductions(prog.procedure("t").body)
    ops = sorted(u.op for u in ups)
    assert ops == ["*", "+", "+", "max"]


def test_region_validation_demotes_conflicting_reduction(simple_program):
    """A location both reduced and plainly accessed must not stay a
    reduction (VarSummary.validated)."""
    from repro.analysis import ArrayDataFlow
    prog = build_program("""
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 1, 50
        a(i) = a(i) + 1.0
        x = a(7)
10    CONTINUE
      END
""")
    df = ArrayDataFlow(prog)
    loop = prog.loop("t/10")
    body = df.loop_body_summary[loop.stmt_id]
    key = ("v", "t", "a")
    vs = body.vars[key]
    # the plain read of a(7) overlaps the reduction region: demoted
    assert not vs.reductions or all(
        s.is_empty() for s in vs.reductions.values())
