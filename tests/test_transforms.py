"""Transforms: directives, reduction lowering, contraction, splitting."""

import pytest

from repro.ir import build_program
from repro.parallelize import (Assertion, Parallelizer, annotate_source,
                               contract_in_program, find_splittable_blocks,
                               loop_directives, lower_array_reduction,
                               lower_scalar_reduction, split_common_blocks,
                               split_pass)
from repro.runtime import run_program


def test_directives_for_parallel_loop():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(50), w(5)
      s = 0.0
      DO 10 i = 1, 50
        w(1) = i * 1.0
        a(i) = w(1) * 2.0
        s = s + a(i)
10    CONTINUE
      PRINT *, s
      END
""")
    plan = Parallelizer(prog).plan()
    lines = loop_directives(plan.plan_by_name("t/10"))
    assert lines and lines[0].startswith("C$PAR PARALLEL DO")
    assert "PRIVATE(" in lines[0]
    assert "REDUCTION(+: s)" in lines[0]


def test_annotate_source_places_directive_above_loop():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 1, 50
        a(i) = i * 1.0
10    CONTINUE
      END
""")
    plan = Parallelizer(prog).plan()
    text = annotate_source(prog, plan)
    lines = text.splitlines()
    idx = next(k for k, l in enumerate(lines) if "PARALLEL DO" in l)
    assert "DO 10" in lines[idx + 1]


def test_reduction_lowering_texts():
    scalar = lower_scalar_reduction("s", "+")
    assert "priv_s" in scalar and "lock()" in scalar
    for strat in ("naive", "minimized", "staggered", "atomic"):
        text = lower_array_reduction("b", "+", strategy=strat)
        assert "priv_b" in text or strat == "atomic"
    assert "LOCK(ind[i])" in lower_array_reduction("fox", "+",
                                                   strategy="atomic")


CONTRACT_SRC = """
      PROGRAM t
      DIMENSION d(40,40), w(40,40)
      INTEGER n
      n = 30
      DO 50 j = 2, n
        d(1,j) = 0.0
        DO 30 i = 2, n
          d(i,j) = d(i-1,j) * 0.5 + w(i,j)
30      CONTINUE
        DO 40 i = 2, n
          w(i,j) = w(i,j) + d(i,j) * 0.25
40      CONTINUE
50    CONTINUE
      PRINT *, w(3,3)
      END
"""


def test_contraction_drops_dimension_and_preserves_semantics():
    prog = build_program(CONTRACT_SRC)
    before = run_program(prog).outputs

    prog2 = build_program(CONTRACT_SRC)
    result = contract_in_program(prog2)
    contracted = {(p, v) for p, v, _ in result.contracted}
    assert ("t", "d") in contracted
    dsym = prog2.procedure("t").symbols.lookup("d")
    assert dsym.rank == 1                       # d(i,j) -> d(i)
    after = run_program(prog2).outputs
    assert after == pytest.approx(before)


def test_contraction_requires_deadness():
    src = CONTRACT_SRC.replace("PRINT *, w(3,3)", "PRINT *, d(3,3)")
    prog = build_program(src)
    result = contract_in_program(prog)
    assert ("t", "d") not in {(p, v) for p, v, _ in result.contracted}


def test_contraction_to_scalar_iterates():
    prog = build_program("""
      PROGRAM t
      DIMENSION tt(40,40), w(40,40)
      INTEGER n
      n = 30
      DO 50 j = 2, n
        DO 30 i = 2, n
          tt(i,j) = w(i,j) * 0.5
          w(i,j) = tt(i,j) + 1.0
30      CONTINUE
50    CONTINUE
      PRINT *, w(3,3)
      END
""")
    before = run_program(prog).outputs
    result = contract_in_program(prog)
    sym = prog.procedure("t").symbols.lookup("tt")
    assert sym.rank == 0                        # fully scalarized
    assert run_program(prog).outputs == pytest.approx(before)


def test_contraction_shrinks_allocation():
    prog = build_program(CONTRACT_SRC)
    contract_in_program(prog)
    interp = run_program(prog)
    # frame buffer for d must now be 1-D (40 elements)
    dsym = prog.procedure("t").symbols.lookup("d")
    assert dsym.constant_size() == 40


# -- common-block splitting -------------------------------------------------------

def test_split_pass_on_hydro2d_preserves_output():
    from repro.workloads import get
    w = get("hydro2d")
    base = run_program(w.build(), w.inputs).outputs
    prog = w.build()
    report = split_pass(prog)
    assert report.total_splits() >= 2
    assert "varn" not in report.split_blocks
    after = run_program(prog, w.inputs).outputs
    assert after == pytest.approx(base)


def test_split_blocks_create_separate_storage():
    from repro.workloads import get
    prog = get("hydro2d").build()
    report = split_pass(prog)
    assert all(b not in prog.commons for b in report.split_blocks)
    # each split block yields >= 2 successor blocks
    for b in report.split_blocks:
        succ = [n for n in prog.commons if n.startswith(b + "_")]
        assert len(succ) >= 2


def test_negative_case_has_cross_flow():
    from repro.workloads import get
    prog = get("hydro2d").build()
    report = find_splittable_blocks(prog)
    assert "varn" not in report.splittable_pairs
