"""Symbolic analysis: affine values, loop bounds, induction, variance."""

from repro.analysis.symbolic import SymbolicAnalysis, index_var
from repro.ir import build_program
from repro.ir.statements import AssignStmt


def build(src):
    prog = build_program(src)
    return prog, SymbolicAnalysis(prog)


def assigns_to(prog, proc, name):
    p = prog.procedure(proc)
    return [s for s in p.statements() if isinstance(s, AssignStmt)
            and s.target.symbol.name == name]


def test_constant_propagation_into_subscript():
    prog, sa = build("""
      PROGRAM t
      DIMENSION a(100)
      INTEGER n
      n = 10
      DO 10 i = 1, n
        a(i + 2) = 1.0
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    loop = prog.loop("t/10")
    low, high, step = psym.loop_bounds[loop.stmt_id]
    assert low.is_constant() and low.const == 1
    assert high.is_constant() and high.const == 10
    assert step == 1
    stmt = assigns_to(prog, "t", "a")[0]
    idx = psym.affine_index(stmt.target.indices[0], stmt)
    assert idx is not None
    assert idx.coeff(index_var(loop)) == 1
    assert idx.const == 2


def test_affine_chain_through_scalars():
    prog, sa = build("""
      PROGRAM t
      DIMENSION a(100)
      INTEGER n
      n = 20
      DO 10 i = 1, n
        k = i * 2
        k2 = k + 3
        a(k2) = 1.0
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    loop = prog.loop("t/10")
    stmt = assigns_to(prog, "t", "a")[0]
    idx = psym.affine_index(stmt.target.indices[0], stmt)
    assert idx.coeff(index_var(loop)) == 2
    assert idx.const == 3


def test_conditional_assignment_becomes_opaque():
    """The vsetuv/85 pattern: k1p1 conditionally bumped -> unknown."""
    prog, sa = build("""
      PROGRAM t
      DIMENSION a(100)
      DO 10 i = 1, 10
        k1 = 2
        k1p1 = k1
        IF (k1 .EQ. 1) k1p1 = k1 + 1
        a(k1p1) = 1.0
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    stmt = assigns_to(prog, "t", "a")[0]
    idx = psym.affine_index(stmt.target.indices[0], stmt)
    # the merge of 2 and 3 must be an opaque (tag) term, not a constant
    assert idx is None or any(psym.tags.is_tag(v) for v in idx.variables())


def test_array_load_is_opaque_and_loop_variant():
    prog, sa = build("""
      PROGRAM t
      DIMENSION a(100), klo(100)
      INTEGER klo
      DO 10 i = 1, 10
        k = klo(i)
        a(k) = 1.0
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    loop = prog.loop("t/10")
    stmt = assigns_to(prog, "t", "a")[0]
    idx = psym.affine_index(stmt.target.indices[0], stmt)
    assert idx is not None
    (term,) = idx.variables()
    assert psym.tags.is_tag(term)
    assert psym.is_variant(term, loop)


def test_invariant_entry_value_not_variant():
    prog, sa = build("""
      PROGRAM t
      DIMENSION a(100)
      INTEGER n
      READ *, n
      DO 10 i = 1, n
        a(n) = 1.0
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    loop = prog.loop("t/10")
    stmt = assigns_to(prog, "t", "a")[0]
    idx = psym.affine_index(stmt.target.indices[0], stmt)
    assert idx is not None
    for term in idx.variables():
        assert not psym.is_variant(term, loop)


def test_basic_induction_variable_recognized():
    prog, sa = build("""
      PROGRAM t
      INTEGER k
      k = 0
      DO 10 i = 1, 10
        k = k + 2
        x = k * 1.0
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    loop = prog.loop("t/10")
    ind = psym.induction[loop.stmt_id]
    names = {s.name for s in ind}
    assert "k" in names


def test_variant_increment_is_not_induction():
    """qcd regression: action = action + plaq with plaq loop-defined."""
    prog, sa = build("""
      PROGRAM t
      DIMENSION a(100)
      s = 0.0
      DO 10 i = 1, 10
        p = a(i) * 2.0
        s = s + p
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    loop = prog.loop("t/10")
    assert not any(sym.name == "s" for sym in psym.induction[loop.stmt_id])


def test_conditional_increment_is_not_induction():
    prog, sa = build("""
      PROGRAM t
      INTEGER k
      k = 0
      DO 10 i = 1, 10
        IF (i .GT. 5) k = k + 1
10    CONTINUE
      END
""")
    psym = sa.result(prog.procedure("t"))
    loop = prog.loop("t/10")
    assert not any(sym.name == "k" for sym in psym.induction[loop.stmt_id])


def test_call_kills_affine_value():
    prog, sa = build("""
      PROGRAM t
      DIMENSION a(100)
      INTEGER n
      n = 5
      CALL bump(n)
      a(n) = 1.0
      END
      SUBROUTINE bump(m)
      m = m + 1
      END
""")
    psym = sa.result(prog.procedure("t"))
    stmt = assigns_to(prog, "t", "a")[0]
    idx = psym.affine_index(stmt.target.indices[0], stmt)
    # n was 5, but the call modifies it: must NOT still be the constant 5
    assert idx is None or not (idx.is_constant() and idx.const == 5)
