"""The generated-workload corpus factory (repro.workloads.synth).

Three contracts under test:

1. **Determinism** — ``generate(seed, profile)`` is a pure function of
   its arguments and ``GENERATOR_VERSION``: identical source text, trait
   manifest, and reference outputs in-process, across calls, and across
   a spawn-started subprocess (the service pool's start method).
2. **4-way parity at corpus scale** — over the pinned tier-1 slice
   (``REPRO_SYNTH_N`` programs, default 200; CI pins 50; soak runs use
   500+), every program produces bit-identical outputs and op counts on
   the tree oracle, the closure-compiled engine, the transpiled engine,
   and the 2-worker parallel protocol — and the tree run reproduces the
   manifest's self-computed reference exactly.
3. **Lazy registration** — ``import repro.workloads`` neither imports
   the synth package nor generates anything; synth names resolve through
   ``workloads.get`` on demand; ``register_lazy`` materializes once.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.ir import build_program
from repro.parallelize import Parallelizer
from repro.runtime import run_program
from repro.runtime.par_backend import ParallelRunner
from repro.workloads import synth
from repro.workloads.synth import generator as synth_generator

SLICE_N = int(os.environ.get("REPRO_SYNTH_N", "200"))
SLICE = synth.pinned_slice(SLICE_N)


def _subprocess_env():
    """The repro import path for a fresh interpreter, wherever pytest
    was launched from."""
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
    return env


# -- naming and the pinned slice ----------------------------------------------

def test_name_round_trip():
    for profile in synth.PROFILES:
        name = synth.synth_name(123, profile)
        assert name == f"synth/s123-{profile}"
        assert synth.parse_name(name) == (123, profile)
        assert synth.is_synth_name(name)


@pytest.mark.parametrize("bad", [
    "mdg", "synth/x1-mix", "synth/s1", "synth/s1-nosuch",
    "synth/sx-mix", "synth/s1-",
])
def test_bad_names_rejected(bad):
    with pytest.raises(ValueError):
        synth.parse_name(bad)


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        synth.synth_name(1, "nosuch")
    with pytest.raises(ValueError):
        synth.generate(1, "nosuch")


def test_pinned_slice_is_prefix_stable():
    """Scaling REPRO_SYNTH_N only appends: the CI 50-slice is a strict
    prefix of the default 200-slice is a prefix of any soak slice."""
    s50, s200, s500 = (synth.pinned_slice(n) for n in (50, 200, 500))
    assert s200[:50] == s50
    assert s500[:200] == s200
    assert len(set(s500)) == 500
    # every profile appears in even the smallest CI slice
    profiles = {synth.parse_name(n)[1] for n in s50}
    assert profiles == set(synth.PROFILES)


# -- determinism --------------------------------------------------------------

def test_generation_is_deterministic_in_process():
    a = synth_generator.generate(77, "mix")   # uncached path
    b = synth_generator.generate(77, "mix")
    assert a is not b
    assert a.source == b.source
    assert a.manifest == b.manifest
    assert json.dumps(a.manifest, sort_keys=True) == \
        json.dumps(b.manifest, sort_keys=True)


def test_manifest_json_round_trips():
    m = synth.generate(5, "red-sp").manifest
    assert json.loads(json.dumps(m)) == m
    assert m["source_sha256"] == \
        __import__("hashlib").sha256(
            synth.generate(5, "red-sp").source.encode()).hexdigest()


_SPAWN_PROBE = """
import json, sys
from repro.workloads import synth
w = synth.generate({seed}, {profile!r})
print(json.dumps({{"source": w.source, "manifest": w.manifest}}))
"""


def test_generation_is_deterministic_across_spawn():
    """Same seed + profile => byte-identical source and manifest in a
    fresh interpreter (what a spawn-started pool worker sees)."""
    here = synth.generate(9, "mix")
    out = subprocess.run(
        [sys.executable, "-c",
         _SPAWN_PROBE.format(seed=9, profile="mix")],
        capture_output=True, text=True, check=True,
        env=_subprocess_env())
    remote = json.loads(out.stdout)
    assert remote["source"] == here.source
    assert remote["manifest"] == here.manifest


def test_generate_is_lru_cached():
    a = synth.generate(31, "deep")
    assert synth.generate(31, "deep") is a


# -- trait contracts ----------------------------------------------------------

@pytest.mark.parametrize("profile", synth.PROFILES)
def test_plan_floor_holds(profile):
    """Every profile's manifest promises a minimum automatically-proven
    parallel loop count; the recorded plan census must honor it."""
    for seed in range(6):
        m = synth.generate(seed, profile).manifest
        assert m["plan"]["parallel_count"] >= \
            m["plan"]["expected_parallel_min"], (profile, seed, m["plan"])
        assert sorted(m["plan"]["parallel_loops"]) == \
            m["plan"]["parallel_loops"]


def test_priv_profile_exercises_liveness_decision():
    """The priv profile must emit all three privatization stories:
    dead temp (-> private), live-out temp (-> private_final, the
    liveness-driven finalization), and a conditional-write block."""
    seen = {}
    for seed in range(24):
        w = synth.generate(seed, "priv")
        variant = w.manifest["traits"]["priv"]["variant"]
        prog = w.build()
        plan = Parallelizer(prog).plan()
        loop = prog.all_loops()[-1]
        lp = plan.plan_for(loop)
        statuses = {vp.display_name: vp.status for vp in lp.vars.values()}
        if variant == "blocked":
            assert not lp.parallel
        else:
            assert lp.parallel
            want = "private" if variant == "dead" else "private_final"
            assert statuses["s0"] == want, (seed, variant, statuses)
        seen[variant] = seen.get(variant, 0) + 1
    assert set(seen) == {"dead", "liveout", "blocked"}, seen


def test_ind_profile_pins_distance_one_chains():
    for seed in range(6):
        m = synth.generate(seed, "ind").manifest
        assert m["traits"]["indirect_chain"]["distance"] == 1


def test_mix_profile_draws_varied_sections():
    drawn = set()
    for seed in range(16):
        m = synth.generate(seed, "mix").manifest
        assert 2 <= len(m["sections"]) <= 4
        drawn.update(m["sections"])
    assert len(drawn) >= 5, drawn


# -- 4-way engine parity over the pinned slice --------------------------------

@pytest.mark.parametrize("name", SLICE)
def test_four_way_parity(name):
    """tree == compiled == transpiled == 2-worker parallel protocol,
    outputs and op counts, and the tree run matches the manifest's
    generation-time reference bit-exactly."""
    w = synth.from_name(name)
    ref = w.manifest["reference"]
    tree = run_program(build_program(w.source, w.name), engine="tree")
    assert [float(v) for v in tree.outputs] == ref["outputs"], name
    assert tree.ops == ref["ops"], name
    comp = run_program(build_program(w.source, w.name), engine="compiled")
    tp = build_program(w.source, w.name)
    trans = run_program(tp, engine="transpiled")
    assert tree.outputs == comp.outputs == trans.outputs, name
    assert tree.ops == comp.ops == trans.ops, name
    plan = Parallelizer(tp).plan()
    par = ParallelRunner(tp, plan, workers=2, inline=True).execute(())
    assert par.outputs == trans.outputs, name
    assert par.ops == trans.ops, name


# -- lazy registration --------------------------------------------------------

_IMPORT_PROBE = """
import sys
import repro.workloads as W
synth_loaded = [m for m in sys.modules if "workloads.synth" in m]
assert not synth_loaded, f"importing repro.workloads pulled {synth_loaded}"
assert "hypothesis" not in sys.modules
n_eager = len(W.ALL)
w = W.get("synth/s0-red-sc")
assert w.name == "synth/s0-red-sc"
assert any("workloads.synth" in m for m in sys.modules)
assert len(W.ALL) == n_eager, "synth resolution must not mutate ALL"
print(n_eager)
"""


def test_import_is_lazy_and_side_effect_free():
    """``import repro.workloads`` must not import the synth package (or
    hypothesis), and resolving a synth name afterwards must not grow the
    eager registry."""
    out = subprocess.run(
        [sys.executable, "-c", _IMPORT_PROBE],
        capture_output=True, text=True, env=_subprocess_env())
    assert out.returncode == 0, out.stderr
    assert int(out.stdout.strip()) == 27  # the hand-built corpus size


def test_register_lazy_materializes_once():
    from repro.workloads import corpus
    from repro.workloads.base import Workload
    calls = []

    def factory():
        calls.append(1)
        return Workload("lazy/probe", "probe", "      PROGRAM p\n"
                        "      PRINT *, 1.0\n      END")

    corpus.register_lazy("lazy/probe", factory)
    try:
        a = corpus.get("lazy/probe")
        b = corpus.get("lazy/probe")
        assert a is b
        assert calls == [1]
        with pytest.raises(ValueError):
            corpus.register_lazy("mdg", factory)  # eager name collision
    finally:
        corpus._LAZY.pop("lazy/probe", None)
        corpus._MATERIALIZED.pop("lazy/probe", None)


def test_get_error_mentions_synth_scheme():
    from repro.workloads import get
    with pytest.raises(KeyError) as exc:
        get("nosuch")
    assert "synth/s<seed>-<profile>" in str(exc.value)


def test_get_resolves_synth_names_for_cli_and_service():
    from repro.workloads import get
    w = get("synth/s2-alias")
    assert w.manifest["profile"] == "alias"
    assert "synth" in w.tags and "alias" in w.tags
