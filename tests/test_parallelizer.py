"""The automatic parallelizer: classification, blockers, assertions."""

import pytest

from repro.ir import build_program
from repro.parallelize import (Assertion, DEP, INDUCTION, PARALLEL,
                               PRIVATE, PRIVATE_FINAL, PRIVATE_USER,
                               Parallelizer, REDUCTION)


def plan_for(src, **kw):
    prog = build_program(src)
    return prog, Parallelizer(prog, **kw).plan()


def var_status(plan, loop_name, var):
    lp = plan.plan_by_name(loop_name)
    for vp in lp.vars.values():
        if var in vp.display_name.split("/"):
            return vp.status
    return None


def test_independent_loop_parallel():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 1, 50
        a(i) = i * 1.0
10    CONTINUE
      END
""")
    assert plan.plan_by_name("t/10").parallel


def test_recurrence_blocks():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 2, 50
        a(i) = a(i-1) + 1.0
10    CONTINUE
      END
""")
    lp = plan.plan_by_name("t/10")
    assert not lp.parallel
    assert var_status(plan, "t/10", "a") == DEP


def test_scalar_reduction_classified():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION a(50)
      s = 0.0
      DO 10 i = 1, 50
        s = s + a(i)
10    CONTINUE
      PRINT *, s
      END
""")
    assert var_status(plan, "t/10", "s") == REDUCTION
    assert plan.plan_by_name("t/10").parallel


def test_induction_variable_classified():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION a(100)
      INTEGER k
      k = 0
      DO 10 i = 1, 50
        k = k + 1
        a(i) = k * 1.0
10    CONTINUE
      END
""")
    assert var_status(plan, "t/10", "k") == INDUCTION


def test_privatizable_temp_dead_at_exit():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION w(50), b(50)
      DO 10 i = 1, 50
        w(1) = i * 1.0
        w(2) = i * 2.0
        b(i) = w(1) + w(2)
10    CONTINUE
      PRINT *, b(3)
      END
""")
    assert var_status(plan, "t/10", "w") == PRIVATE
    assert plan.plan_by_name("t/10").parallel


def test_privatizable_needs_finalization_when_live():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION w(50), b(50)
      DO 10 i = 1, 50
        w(1) = i * 1.0
        b(i) = w(1) * 2.0
10    CONTINUE
      PRINT *, w(1)
      END
""")
    # w live after the loop; region is iteration-invariant -> last-value
    assert var_status(plan, "t/10", "w") == PRIVATE_FINAL


def test_variant_region_needs_liveness():
    src = """
      PROGRAM t
      DIMENSION w(60), b(60)
      DO 10 i = 1, 50
        DO 5 k = 1, i
          w(k) = k * 1.0
5       CONTINUE
        b(i) = w(i) * 2.0
10    CONTINUE
      PRINT *, b(3)
      END
"""
    prog, plan = plan_for(src, use_liveness=False)
    assert var_status(plan, "t/10", "w") == DEP     # finalization unprovable
    prog, plan = plan_for(src, use_liveness=True)
    assert var_status(plan, "t/10", "w") == PRIVATE


def test_exposed_read_blocks_privatization():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION w(50), b(50)
      w(9) = 5.0
      DO 10 i = 1, 50
        w(1) = i * 1.0
        b(i) = w(1) + w(9)
10    CONTINUE
      PRINT *, b(3)
      END
""")
    assert var_status(plan, "t/10", "w") == DEP


def test_reduction_recognition_can_be_disabled():
    src = """
      PROGRAM t
      DIMENSION a(50)
      s = 0.0
      DO 10 i = 1, 50
        s = s + a(i)
10    CONTINUE
      PRINT *, s
      END
"""
    prog, plan = plan_for(src, use_reductions=False)
    assert not plan.plan_by_name("t/10").parallel
    prog, plan = plan_for(src, use_reductions=True)
    assert plan.plan_by_name("t/10").parallel


def test_io_blocks_parallelization():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 1, 50
        a(i) = i * 1.0
        PRINT *, a(i)
10    CONTINUE
      END
""")
    lp = plan.plan_by_name("t/10")
    assert not lp.parallel
    assert any("I/O" in b for b in lp.blockers)


def test_early_exit_blocks_parallelization():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 1, 50
        a(i) = i * 1.0
        IF (a(i) .GT. 40.0) EXIT
10    CONTINUE
      END
""")
    assert not plan.plan_by_name("t/10").parallel


def test_user_assertion_overrides_dep():
    src = """
      PROGRAM t
      DIMENSION w(50), b(50)
      w(9) = 5.0
      DO 10 i = 1, 50
        w(1) = i * 1.0
        b(i) = w(1) + w(9)
10    CONTINUE
      PRINT *, b(3)
      END
"""
    prog = build_program(src)
    plan = Parallelizer(prog, assertions=[
        Assertion("t/10", "w", "privatizable")]).plan()
    assert plan.plan_by_name("t/10").parallel
    lp = plan.plan_by_name("t/10")
    statuses = {v.display_name: v.status for v in lp.vars.values()}
    assert statuses["w"] == PRIVATE_USER


def test_assertion_does_not_demote_automatic_results():
    """An assertion on an already-privatizable variable keeps the
    automatic classification (the paper's accounting separates the two)."""
    src = """
      PROGRAM t
      DIMENSION w(50), b(50)
      DO 10 i = 1, 50
        w(1) = i * 1.0
        b(i) = w(1) * 2.0
10    CONTINUE
      PRINT *, b(3)
      END
"""
    prog = build_program(src)
    plan = Parallelizer(prog, assertions=[
        Assertion("t/10", "w", "privatizable")]).plan()
    assert var_status(plan, "t/10", "w") in (PRIVATE, PRIVATE_FINAL)


def test_outermost_parallel_strategy():
    prog, plan = plan_for("""
      PROGRAM t
      DIMENSION a(30,30)
      DO 20 j = 1, 30
        DO 10 i = 1, 30
          a(i,j) = i * j * 1.0
10      CONTINUE
20    CONTINUE
      END
""")
    outer = plan.outermost_parallel()
    assert [l.name for l in outer] == ["t/20"]


def test_interprocedural_loop_parallel(mdg_program):
    """mdg's interf/1000 becomes parallel only with the rl assertion."""
    plan_auto = Parallelizer(mdg_program).plan()
    assert not plan_auto.plan_by_name("interf/1000").parallel
    plan_user = Parallelizer(mdg_program, assertions=[
        Assertion("interf/1000", "rl", "privatizable")]).plan()
    assert plan_user.plan_by_name("interf/1000").parallel
