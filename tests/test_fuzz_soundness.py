"""Property-based soundness fuzzing of the whole pipeline.

Random structured mini-Fortran programs are generated, then:

* they must build, execute, and simulate without errors,
* execution is deterministic,
* **parallelization soundness**: every loop the static parallelizer marks
  PARALLEL must show *zero* loop-carried flow dependences when executed
  under the Dynamic Dependence Analyzer (with compiler-known reduction
  statements skipped, exactly as the Explorer runs it).  The dynamic
  analyzer observes real memory addresses, so any misclassification by
  the polyhedral analyses shows up here.

Scalars live in a COMMON block so the (buffer-based) dynamic analyzer
sees their traffic too.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import build_program
from repro.parallelize import Parallelizer
from repro.runtime import analyze_dependences, reduction_stmt_ids, \
    run_program
from repro.workloads.synth.emit import (Chooser, fuzz_program,
                                        reduction_merge_program)


class _DrawChooser(Chooser):
    """A Hypothesis-backed chooser: the grammar lives once in
    ``repro.workloads.synth.emit`` (shared with the seeded corpus
    factory, so fuzzer and generator cannot drift apart); here every
    decision routes through ``draw``, which keeps shrinking — Hypothesis
    minimizes the draw sequence and replays it through the same rules."""

    def __init__(self, draw):
        self._draw = draw

    def choice(self, seq):
        return self._draw(st.sampled_from(list(seq)))

    def randint(self, lo, hi):
        return self._draw(st.integers(lo, hi))

    def boolean(self):
        return self._draw(st.booleans())


@st.composite
def programs(draw):
    return fuzz_program(_DrawChooser(draw))


@settings(max_examples=30, deadline=None)
@given(programs())
def test_pipeline_never_crashes_and_is_deterministic(source):
    prog = build_program(source, "fuzz")
    out1 = run_program(prog, max_ops=2_000_000).outputs
    out2 = run_program(build_program(source, "fuzz"),
                       max_ops=2_000_000).outputs
    assert out1 == out2
    Parallelizer(prog).plan()          # analyses must not crash


@settings(max_examples=30, deadline=None)
@given(programs())
def test_static_parallel_loops_have_no_dynamic_flow_deps(source):
    """The soundness oracle: statically-parallel => dynamically clean."""
    prog = build_program(source, "fuzz")
    plan = Parallelizer(prog).plan()
    parallel = plan.parallel_loops()
    if not parallel:
        return
    dd = analyze_dependences(prog,
                             skip_stmt_ids=reduction_stmt_ids(prog),
                             max_ops=2_000_000)
    for loop in parallel:
        assert not dd.has_carried_dependence(loop), (
            f"UNSOUND: {loop.name} marked parallel but the dynamic "
            f"analyzer observed a loop-carried flow dependence\n"
            f"witness lines: {dd.witnesses.get(loop.stmt_id)}\n"
            f"program:\n{source}")


@settings(max_examples=30, deadline=None)
@given(programs())
def test_interpreter_vs_transpiled_backend(source):
    """Differential semantics fuzzing: the tree-walking interpreter, the
    closure-compiling engine, and the transpiled-Python backend are three
    independent implementations and must agree on every generated
    program."""
    from repro.runtime.transpile import compile_program
    prog = build_program(source, "fuzz")
    interp = run_program(prog, max_ops=2_000_000, engine="tree").outputs
    closure = run_program(prog, max_ops=2_000_000,
                          engine="compiled").outputs
    transpiled = compile_program(prog)([])
    assert closure == interp
    assert transpiled == pytest.approx([float(v) for v in interp])


@settings(max_examples=20, deadline=None)
@given(programs())
def test_budget_exhaustion_is_identical_across_engines(source):
    """Budget-bounded differential case: with ``max_ops`` set below a
    program's total op count, all three engines must fail with the
    *same* unified :class:`OpsBudgetExceeded` — identical type,
    identical message — never a partial result or a divergent error
    string."""
    from repro.runtime import OpsBudgetExceeded
    prog = build_program(source, "fuzz")
    total = run_program(prog, max_ops=2_000_000, engine="tree").ops
    budget = max(1, total // 2)
    messages = []
    for engine in ("tree", "compiled", "transpiled"):
        with pytest.raises(OpsBudgetExceeded) as exc_info:
            run_program(prog, max_ops=budget, engine=engine)
        assert exc_info.value.max_ops == budget
        messages.append(str(exc_info.value))
    assert len(set(messages)) == 1
    assert messages[0] == \
        f"operation budget exceeded (max_ops={budget})"


def _assert_engine_parity(prog_a, prog_b, inputs=(),
                          max_ops=20_000_000, context=""):
    """Tree-walking oracle and compiled engine must agree *exactly*:
    printed outputs, final COMMON-block buffer contents, and the op
    count (the compiled engine's contract is bit-identical accounting,
    not just matching answers)."""
    import numpy as np
    tree = run_program(prog_a, inputs, max_ops=max_ops, engine="tree")
    comp = run_program(prog_b, inputs, max_ops=max_ops, engine="compiled")
    assert comp.outputs == tree.outputs, context
    assert comp.ops == tree.ops, (
        f"{context}: op-count drift tree={tree.ops} compiled={comp.ops}")
    assert set(comp.commons) == set(tree.commons), context
    for name, buf in tree.commons.items():
        assert np.array_equal(comp.commons[name].data, buf.data), (
            f"{context}: COMMON /{name}/ contents differ")


@settings(max_examples=30, deadline=None)
@given(programs())
def test_compiled_engine_matches_tree_oracle(source):
    """Differential fuzzing of the closure-compiled engine against the
    tree-walking reference: outputs, COMMON memory, and op counts must
    be identical, not merely close."""
    prog = build_program(source, "fuzz")
    _assert_engine_parity(prog, prog, max_ops=2_000_000, context="fuzz")


@settings(max_examples=30, deadline=None)
@given(programs())
def test_transpiled_engine_matches_tree_oracle(source):
    """Differential fuzzing of the code-generating engine against the
    tree-walking reference: the generated Python (with its range-driven
    loops, merged op charges, precharged bodies, hoisting and
    store-forwarding) must reproduce outputs, COMMON memory, and op
    counts exactly — and report the ``transpiled/plain`` label."""
    import numpy as np
    from repro.runtime.compile_engine import engine_label
    prog = build_program(source, "fuzz")
    tree = run_program(prog, max_ops=2_000_000, engine="tree")
    trans = run_program(prog, max_ops=2_000_000, engine="transpiled")
    assert engine_label(trans) == "transpiled/plain"
    assert trans.outputs == tree.outputs
    assert trans.ops == tree.ops, (
        f"op-count drift tree={tree.ops} transpiled={trans.ops}")
    assert set(trans.commons) == set(tree.commons)
    for name, buf in tree.commons.items():
        assert np.array_equal(trans.commons[name].data, buf.data), (
            f"COMMON /{name}/ contents differ")


@settings(max_examples=30, deadline=None)
@given(programs())
def test_engines_agree_and_are_unperturbed_under_tracing(source):
    """Differential fuzzing with the observability layer switched ON:
    activating a tracer must change neither engine's outputs, memory,
    or op counts (parity still holds), and must actually record the
    execution spans — tracing observes, never feeds back."""
    from repro.obs import Tracer, activate
    prog = build_program(source, "fuzz")
    # untraced baseline for both engines
    base_tree = run_program(prog, max_ops=2_000_000, engine="tree")
    tracer = Tracer()
    with activate(tracer):
        _assert_engine_parity(prog, prog, max_ops=2_000_000,
                              context="traced-fuzz")
        traced_tree = run_program(prog, max_ops=2_000_000, engine="tree")
    assert traced_tree.outputs == base_tree.outputs
    assert traced_tree.ops == base_tree.ops
    names = {s.name for s in tracer.finished_spans()}
    assert "execute" in names, "tracer recorded no engine spans"


@settings(max_examples=30, deadline=None)
@given(programs())
def test_instrumented_fast_path_matches_oracle_under_tracing(source):
    """Differential fuzzing of the *instrumented* fast path with the
    observability layer switched ON: a lone fresh profiler / dyndep
    analyzer is compiled into the closure engine (``compiled/profile``,
    ``compiled/dyndep``), and its state must be bit-identical to the
    same observer riding the tree-walking oracle — profiles including
    first-touch order, carried-dependence census, witness pairs, and
    sampling counters — while the tracer records the
    ``instrument.profile`` / ``instrument.dyndep`` spans with the
    engine variant that actually ran."""
    from repro.obs import Tracer, activate
    from repro.runtime import profile_program
    from repro.runtime.compile_engine import engine_label
    prog = build_program(source, "fuzz")
    skip = reduction_stmt_ids(prog)
    tracer = Tracer()
    with activate(tracer):
        profs = {e: profile_program(prog, max_ops=2_000_000, engine=e)
                 for e in ("tree", "compiled")}
        dds = {e: analyze_dependences(prog, skip_stmt_ids=skip,
                                      max_ops=2_000_000, engine=e)
               for e in ("tree", "compiled")}
    assert engine_label(profs["compiled"].interpreter) == \
        "compiled/profile"
    assert engine_label(dds["compiled"].interpreter) == "compiled/dyndep"
    tp, cp = profs["tree"], profs["compiled"]
    assert cp.total_ops == tp.total_ops
    assert [(p.loop.stmt_id, p.total_ops, p.invocations, p.iterations)
            for p in cp.executed_loops()] == \
           [(p.loop.stmt_id, p.total_ops, p.invocations, p.iterations)
            for p in tp.executed_loops()]
    td, cd = dds["tree"], dds["compiled"]
    assert cd.carried == td.carried
    assert cd.carried_by_var == td.carried_by_var
    assert cd.witnesses == td.witnesses
    assert cd.sampled_accesses == td.sampled_accesses
    assert cd.skipped_accesses == td.skipped_accesses
    spans = tracer.to_dicts()
    variants = {s["name"]: {s2["tags"].get("engine_variant")
                            for s2 in spans if s2["name"] == s["name"]}
                for s in spans}
    assert variants.get("instrument.profile") == \
        {"tree", "compiled/profile"}
    assert variants.get("instrument.dyndep") == \
        {"tree", "compiled/dyndep"}


def _corpus_names():
    from repro.workloads import corpus
    return sorted(corpus.ALL)


@pytest.mark.parametrize("name", _corpus_names())
def test_compiled_engine_parity_on_corpus(name):
    """Every workload in the registry runs bit-identically under both
    engines — the whole-corpus safety net behind the ``engine=``
    default flip."""
    from repro.workloads import corpus
    w = corpus.get(name)
    _assert_engine_parity(w.build(), w.build(), inputs=w.inputs,
                          context=name)



# -- real parallel execution: reduction-merge determinism ---------------------

@st.composite
def reduction_programs(draw):
    """See :func:`repro.workloads.synth.emit.reduction_merge_program`
    — the shapes whose merge order the par_backend must replay
    bit-exactly, drawn through Hypothesis for shrinking."""
    return reduction_merge_program(_DrawChooser(draw))


@settings(max_examples=30, deadline=None)
@given(reduction_programs())
def test_parallel_reduction_merge_matches_sequential(source):
    """Differential fuzzing of the real-execution merge protocol: for
    any generated reduction shape, chunked execution + log replay at 2
    and 4 workers must reproduce the sequential transpiled engine's
    outputs, COMMON memory, and op count *bit-exactly* (not approx —
    the replay preserves evaluation order, operand position, and the
    store's single coercion)."""
    from repro.runtime.par_backend import ParallelRunner
    prog = build_program(source, "fzr")
    plan = Parallelizer(prog).plan()
    seq = run_program(prog, max_ops=2_000_000, engine="transpiled")
    seq_cm = {n: list(b.data) for n, b in seq.commons.items()}
    for workers in (2, 4):
        r = ParallelRunner(prog, plan, workers=workers,
                           inline=True).execute((), max_ops=2_000_000)
        assert r.outputs == seq.outputs, f"w={workers} outputs"
        assert r.ops == seq.ops, f"w={workers} ops"
        assert r.commons == seq_cm, f"w={workers} commons"
