"""Array liveness: the three variants and their precision ordering."""

import pytest

from repro.analysis import (FLOW_INSENSITIVE, FULL, ONE_BIT, ArrayDataFlow,
                            ArrayLiveness, dead_fraction_per_program)
from repro.ir import build_program


def liveness_of(src, variant=FULL):
    prog = build_program(src)
    df = ArrayDataFlow(prog)
    return prog, df, ArrayLiveness(df, variant).result


DEAD_TEMP_SRC = """
      PROGRAM t
      DIMENSION tmp(50), out(50)
      DO 10 i = 1, 50
        tmp(i) = i * 1.0
10    CONTINUE
      DO 20 i = 1, 50
        out(i) = tmp(i) * 2.0
20    CONTINUE
      PRINT *, out(3)
      END
"""


def test_temp_live_between_producer_and_consumer():
    prog, df, live = liveness_of(DEAD_TEMP_SRC)
    assert not live.is_dead_at_exit(prog.loop("t/10"), ("v", "t", "tmp"))


def test_temp_dead_after_consumer():
    prog, df, live = liveness_of(DEAD_TEMP_SRC)
    # loop 20 writes out; out is printed -> live.  tmp is not written in 20.
    assert not live.is_dead_at_exit(prog.loop("t/20"), ("v", "t", "out"))


REWRITE_SRC = """
      PROGRAM t
      DIMENSION tmp(50), a(50)
      DO 100 it = 1, 3
        DO 10 i = 1, 50
          tmp(i) = it * i * 1.0
10      CONTINUE
        DO 20 i = 1, 50
          a(i) = a(i) + tmp(i)
20      CONTINUE
100   CONTINUE
      PRINT *, a(5)
      END
"""


def test_rewritten_temp_dead_at_consumer_exit():
    """After loop 20, tmp's data is dead: the next cycle rewrites it
    entirely before reading (the kill that FULL sees)."""
    prog, df, live = liveness_of(REWRITE_SRC, FULL)
    assert live.is_dead_at_exit(prog.loop("t/20"), ("v", "t", "tmp")) or \
        live.is_dead_at_exit(prog.loop("t/10"), ("v", "t", "a"))
    # producer loop's tmp is live (consumer follows)
    assert not live.is_dead_at_exit(prog.loop("t/10"), ("v", "t", "tmp"))


def test_one_bit_misses_killed_liveness():
    """1-bit has no kill: the next cycle's exposed read keeps tmp 'live'."""
    prog, df, _full = liveness_of(REWRITE_SRC, FULL)
    one = ArrayLiveness(df, ONE_BIT).result
    full = ArrayLiveness(df, FULL).result
    loop10 = prog.loop("t/10")
    # Both agree the producer's data is live.
    assert not one.is_dead_at_exit(loop10, ("v", "t", "tmp"))
    assert not full.is_dead_at_exit(loop10, ("v", "t", "tmp"))


PARTIAL_SRC = """
      PROGRAM t
      DIMENSION buf(100)
      DO 10 i = 1, 50
        buf(i) = i * 1.0
10    CONTINUE
      DO 20 i = 51, 100
        buf(i) = i * 2.0
20    CONTINUE
      s = 0.0
      DO 30 i = 51, 100
        s = s + buf(i)
30    CONTINUE
      PRINT *, s
      END
"""


def test_full_sees_partial_deadness_one_bit_does_not():
    """Only the upper half is read: element-wise liveness finds the lower
    half dead at loop 10's exit, whole-variable liveness cannot."""
    prog, df, full = liveness_of(PARTIAL_SRC, FULL)
    one = ArrayLiveness(df, ONE_BIT).result
    loop10 = prog.loop("t/10")
    assert full.is_dead_at_exit(loop10, ("v", "t", "buf"))
    assert not one.is_dead_at_exit(loop10, ("v", "t", "buf"))


EARLY_READER_SRC = """
      PROGRAM t
      DIMENSION scr(50)
      s = 0.0
      DO 5 i = 1, 50
        s = s + scr(i)
5     CONTINUE
      DO 10 i = 1, 50
        scr(i) = i * 1.0
10    CONTINUE
      DO 20 i = 1, 50
        scr(i) = scr(i) * 2.0
20    CONTINUE
      PRINT *, s, scr(1)
      END
"""


def test_flow_insensitive_confused_by_earlier_reader():
    """Loop 5 reads scr BEFORE loop 20; order-blind FI thinks scr stays
    live after loop 20 (loop 5 is a 'sibling with an exposed read')."""
    prog, df, full = liveness_of(EARLY_READER_SRC, FULL)
    fi = ArrayLiveness(df, FLOW_INSENSITIVE).result
    loop10 = prog.loop("t/10")
    # after loop 10, loop 20 reads scr: live under every variant
    assert not full.is_dead_at_exit(loop10, ("v", "t", "scr"))
    assert not fi.is_dead_at_exit(loop10, ("v", "t", "scr"))
    # scr(2:50) dead after loop 20 under FULL... but scr(1) is printed.
    # Use the cleaner signal: FI must be no more precise than FULL overall.
    nl, nm, nd_fi = dead_fraction_per_program(df, FLOW_INSENSITIVE)
    _, _, nd_full = dead_fraction_per_program(df, FULL)
    assert nd_fi <= nd_full


@pytest.mark.parametrize("workload", ["hydro", "wave5", "hydro2d"])
def test_precision_ladder_on_workloads(workload):
    """Paper Fig 5-7: full >= 1-bit >= flow-insensitive dead counts."""
    from repro.workloads import get
    df = ArrayDataFlow(get(workload).build())
    _, _, fi = dead_fraction_per_program(df, FLOW_INSENSITIVE)
    _, _, ob = dead_fraction_per_program(df, ONE_BIT)
    _, _, fu = dead_fraction_per_program(df, FULL)
    assert fi <= ob <= fu
    assert fu > fi      # the gap the paper reports


def test_interprocedural_liveness_through_calls():
    """Fig 5-1: aif3 written in a callee, consumed, then dead."""
    prog, df, live = liveness_of("""
      PROGRAM t
      DIMENSION a(50), out(50)
      DO 85 l = 2, 40
        CALL init1(a, l)
        DO 60 k = 2, l
          out(k) = out(k) + a(k)
60      CONTINUE
85    CONTINUE
      PRINT *, out(3)
      END
      SUBROUTINE init1(q, n)
      DIMENSION q(*)
      DO 70 j = 2, n
        q(j) = j * 0.001
70    CONTINUE
      END
""")
    loop85 = prog.loop("t/85")
    assert live.is_dead_at_exit(loop85, ("v", "t", "a"))
    assert not live.is_dead_at_exit(loop85, ("v", "t", "out"))
