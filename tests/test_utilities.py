"""Smaller public surfaces: plan summaries, metrics helpers, slice
statistics, workload metadata, poly utilities, IR printer details."""

from fractions import Fraction

from repro.ir import build_program, format_expr, format_statement
from repro.parallelize import Parallelizer
from repro.poly import LinExpr, Section, bounds_system, range_section


def test_linexpr_scale_to_integer():
    e = LinExpr({"x": Fraction(1, 3), "y": Fraction(1, 2)}, Fraction(5, 6))
    scaled = e.scale_to_integer()
    assert all(c.denominator == 1 for c in scaled.coeffs.values())
    assert scaled.const.denominator == 1
    assert scaled.coeff("x") == 2 and scaled.coeff("y") == 3


def test_bounds_system():
    sys_ = bounds_system("i", 2, 9)
    assert not sys_.is_empty()
    from repro.poly import Constraint
    assert sys_.and_also(Constraint.eq(LinExpr.var("i"), 1)).is_empty()
    assert not sys_.and_also(Constraint.eq(LinExpr.var("i"), 9)).is_empty()


def test_section_union_overflow_to_universe():
    from repro.poly.sections import MAX_DISJUNCTS
    acc = Section.empty()
    # many disjoint points force the coalescing cap
    for k in range(0, (MAX_DISJUNCTS + 3) * 4, 4):
        acc = acc.union(range_section(k, k + 1))
    assert acc.is_universe() or len(acc.systems) <= MAX_DISJUNCTS


def test_plan_summary_counts(simple_program):
    plan = Parallelizer(simple_program).plan()
    counts = plan.summary_counts()
    assert counts["loops"] == counts["parallel"] + counts["sequential"]
    assert counts["loops"] == len(simple_program.all_loops())


def test_loopplan_count_helper(simple_program):
    plan = Parallelizer(simple_program).plan()
    lp = plan.plan_by_name("main/30")        # the s = s + b(i) reduction
    assert lp.count("reduction", scalar=True) == 1
    assert lp.count("reduction", scalar=False) == 0


def test_format_statement_variants(simple_program):
    main = simple_program.procedure("main")
    text = "\n".join(
        line for stmt in main.body.statements
        for line in format_statement(stmt))
    assert "DO 20" in text and "CALL fill" in text and "PRINT *" in text


def test_format_expr_operators():
    prog = build_program("""
      PROGRAM t
      x = -(1.0 + 2.0) * max(3.0, 4.0)
      END
""")
    from repro.ir.statements import AssignStmt
    stmt = next(s for s in prog.procedure("t").statements()
                if isinstance(s, AssignStmt))
    text = format_expr(stmt.value)
    assert "MAX" in text and "+" in text


def test_slice_statistics(mdg_program):
    from repro.ir.statements import AssignStmt
    from repro.slicing import Slicer
    from repro.viz import slice_statistics
    slicer = Slicer(mdg_program)
    loop = mdg_program.loop("interf/1000")
    interf = mdg_program.procedure("interf")
    stmt = next(s for s in loop.body.walk()
                if isinstance(s, AssignStmt)
                and s.target.symbol.name == "gg")
    res = slicer.slice_of_use(stmt, interf.symbols.lookup("rl"),
                              region_loop=loop)
    stats = slice_statistics(mdg_program, res, loop, slicer)
    assert stats["loop_lines"] > 0
    assert 0 <= stats["inside_pct"] <= 120


def test_workload_metadata():
    from repro.workloads import ALL, by_tag, get
    w = get("mdg")
    assert w.line_count() > 50
    assert "chapter4" in w.tags
    assert w.paper["user_speedup_8"] == 6.0
    assert {x.name for x in by_tag("contraction")} >= {"flo88"}
    assert len(ALL) >= 25


def test_machine_seconds_scaling():
    from repro.runtime import ALPHASERVER_8400
    assert ALPHASERVER_8400.seconds(ALPHASERVER_8400.ops_per_second) == 1.0


def test_parallel_result_metrics(simple_program):
    from repro.runtime import ALPHASERVER_8400, execute_parallel
    plan = Parallelizer(simple_program).plan()
    res = execute_parallel(simple_program, plan, ALPHASERVER_8400)
    assert res.seconds_sequential() >= res.seconds_parallel() > 0
    assert 0 <= res.coverage <= 1
    assert res.granularity_ms() >= 0


def test_executor_account_matches_direct_run(simple_program):
    from repro.runtime import ALPHASERVER_8400, ParallelExecutor, \
        execute_parallel
    ex = ParallelExecutor(simple_program, Parallelizer(
        simple_program).plan(), ALPHASERVER_8400)
    via_account = ex.results_for([8])[8]
    direct = execute_parallel(simple_program,
                              Parallelizer(simple_program).plan(),
                              ALPHASERVER_8400, processors=8)
    assert via_account.par_ops == direct.par_ops
    assert via_account.speedup == direct.speedup


def test_region_direct_statements(simple_program):
    from repro.ir import RegionGraph
    rg = RegionGraph(simple_program)
    loop = simple_program.loop("main/20")
    body = rg.body_of_loop(loop)
    names = [type(s).__name__ for s in body.direct_statements()]
    assert "AssignStmt" in names
    proc_region = rg.proc_region["main"]
    # loop interiors belong to subregions, not to the procedure region
    direct = list(proc_region.direct_statements_recursive_nonloop())
    assert all(not _inside_loop(s) for s in direct)


def _inside_loop(stmt):
    from repro.ir.statements import enclosing_loops
    return bool(enclosing_loops(stmt))
