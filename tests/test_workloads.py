"""The workload corpus: every program builds, runs, and carries the
structural properties its paper role depends on."""

import pytest

from repro.parallelize import Parallelizer
from repro.runtime import run_program
from repro.workloads import ALL, CHAPTER4, CHAPTER5, CHAPTER6, by_tag, get

FAST = [n for n, w in ALL.items()
        if n not in ("flo88", "flo88_fused", "hydro", "mdg", "arc3d")]


@pytest.mark.parametrize("name", sorted(ALL))
def test_workload_builds(name):
    w = get(name)
    prog = w.build()
    assert prog.main is not None
    assert prog.all_loops()


@pytest.mark.parametrize("name", sorted(FAST))
def test_workload_runs_deterministically(name):
    w = get(name)
    a = run_program(w.build(), w.inputs)
    b = run_program(w.build(), w.inputs)
    assert a.outputs == b.outputs
    assert a.outputs, "every workload prints at least one diagnostic"


def test_registry_structure():
    assert {w.name for w in CHAPTER4} == {"mdg", "arc3d", "hydro", "flo88"}
    assert len(CHAPTER5) == 5
    assert len(CHAPTER6) >= 15
    assert by_tag("reduction")


def test_mdg_blocked_only_by_rl(mdg_program):
    plan = Parallelizer(mdg_program, use_liveness=False).plan()
    lp = plan.plan_by_name("interf/1000")
    assert not lp.parallel
    blocked = {v.display_name for v in lp.dependent_vars()}
    assert blocked == {"rl"}


def test_hydro_has_seven_important_patterns(hydro_program):
    plan = Parallelizer(hydro_program, use_liveness=False).plan()
    names = ["update/1000", "vsetuv/85", "vsetuv/105", "vsetuv/155",
             "vqterm/85", "vsetgc/200", "vh2200/1000"]
    for nm in names:
        assert not plan.plan_by_name(nm).parallel, nm


def test_hydro_liveness_parallelizes_some_loops(hydro_program):
    plan = Parallelizer(hydro_program, use_liveness=True).plan()
    auto_par = [nm for nm in ("vsetuv/155", "vqterm/85")
                if plan.plan_by_name(nm).parallel]
    assert auto_par, "array liveness must recover some hydro loops"


def test_hydro_vh2200_never_parallelizes(hydro_workload, hydro_program):
    plan = Parallelizer(hydro_program, use_liveness=True,
                        assertions=hydro_workload.user_assertions).plan()
    assert not plan.plan_by_name("vh2200/1000").parallel


def test_arc3d_sn_pattern():
    w = get("arc3d")
    prog = w.build()
    plan = Parallelizer(prog, use_liveness=False).plan()
    for nm in ("stepf3d/701", "stepf3d/702", "stepf3d/801"):
        lp = plan.plan_by_name(nm)
        assert not lp.parallel
        assert {v.display_name for v in lp.dependent_vars()} == {"sn"}
    plan2 = Parallelizer(prog, use_liveness=False,
                         assertions=w.user_assertions).plan()
    for nm in ("stepf3d/701", "stepf3d/702", "stepf3d/801"):
        assert plan2.plan_by_name(nm).parallel
    assert not plan2.plan_by_name("filter3d/701").parallel


def test_bdna_reduction_loops():
    prog = get("bdna").build()
    plan = Parallelizer(prog).plan()
    for nm in ("actfor/240", "scatter/60"):
        lp = plan.plan_by_name(nm)
        assert lp.parallel, nm
        assert lp.classified("reduction"), nm


def test_spec_kernels_census_matches_expectations():
    from repro.analysis import scan_block_reductions
    from repro.ir.expressions import ArrayRef
    from repro.workloads import spec_kernels
    for w in spec_kernels.WORKLOADS:
        prog = w.build()
        counts = {}
        for proc in prog.procedures.values():
            for upd in scan_block_reductions(proc.body):
                kind = "array" if isinstance(upd.target, ArrayRef) \
                    else "scalar"
                op = {"+": "sum", "*": "prod"}.get(upd.op, upd.op)
                key = f"{op}_{kind}"
                counts[key] = counts.get(key, 0) + 1
        expected = spec_kernels.EXPECTED_REDUCTIONS[w.name]
        for key, n in expected.items():
            assert counts.get(key, 0) >= n, (w.name, key, counts)


def test_nas_perfect_reduction_impact():
    """Disabling reduction recognition must hurt most chapter-6 programs
    (Fig 6-4's point)."""
    from repro.runtime import profile_program
    from repro.explorer.metrics import parallel_coverage
    from repro.workloads import nas_perfect
    hurt = 0
    for w in nas_perfect.WORKLOADS:
        prog = w.build()
        prof = profile_program(prog, w.inputs)
        cov_with = parallel_coverage(
            prog, Parallelizer(prog, use_reductions=True).plan(), prof)
        cov_without = parallel_coverage(
            prog, Parallelizer(prog, use_reductions=False).plan(), prof)
        assert cov_without <= cov_with + 1e-9
        if cov_with - cov_without > 0.3:
            hurt += 1
    assert hurt >= 8      # "tremendous difference" on most programs


def test_spec77_interprocedural_reduction():
    prog = get("spec77").build()
    plan = Parallelizer(prog).plan()
    lp = plan.plan_by_name("spec77/100")
    assert lp.parallel
    reds = lp.classified("reduction")
    names = set()
    for vp in reds:
        names.update(vp.display_name.split("/"))
    assert {"fl", "emean"} <= names


def test_corpus_get_unknown_name_lists_choices():
    """A bare KeyError is useless at the CLI; the registry must name the
    available workloads (PR-2 satellite)."""
    with pytest.raises(KeyError) as err:
        get("no-such-program")
    message = str(err.value)
    assert "no-such-program" in message
    assert "mdg" in message and "hydro2d" in message
