"""The memory-performance advisor (section 4.2.4 / 7.5.1)."""

from repro.ir import build_program
from repro.parallelize import Parallelizer
from repro.parallelize.memory_advisor import (advise,
                                              decomposition_advisories,
                                              locality_advisories,
                                              report_lines)


def test_row_walking_loop_flagged():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(64,64)
      DO 20 i = 1, 64
        DO 10 j = 1, 64
          a(i,j) = i * j * 1.0
10      CONTINUE
20    CONTINUE
      END
""")
    adv = locality_advisories(prog)
    assert len(adv) == 1
    assert adv[0].array == "a"
    assert "interchange" in adv[0].detail        # outer i walks dim 0


def test_column_walking_loop_clean():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(64,64)
      DO 20 j = 1, 64
        DO 10 i = 1, 64
          a(i,j) = i * j * 1.0
10      CONTINUE
20    CONTINUE
      END
""")
    assert locality_advisories(prog) == []


def test_transpose_suggested_without_interchange_partner():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(64,64)
      DO 10 j = 1, 64
        a(5,j) = j * 1.0
10    CONTINUE
      END
""")
    adv = locality_advisories(prog)
    assert adv and "transpose" in adv[0].detail


def test_conflicting_decompositions_detected():
    """Fig 4-6: one parallel loop distributes duac by column, the other
    by row."""
    prog = build_program("""
      PROGRAM t
      DIMENSION duac(64,64)
      DO 20 l = 1, 64
        DO 10 k = 1, 64
          duac(k,l) = k * l * 1.0
10      CONTINUE
20    CONTINUE
      DO 40 k = 1, 64
        DO 30 l = 1, 64
          duac(k,l) = duac(k,l) * 0.5
30      CONTINUE
40    CONTINUE
      END
""")
    plan = Parallelizer(prog).plan()
    adv = decomposition_advisories(prog, plan)
    assert any(a.array == "duac" for a in adv)
    assert "conflicting dimensions" in adv[0].detail


def test_hydro_fig_4_6_conflict(hydro_program, hydro_workload):
    """The real case: vsetuv distributes duac by column (parallel over l),
    vqterm by row (parallel over k)."""
    plan = Parallelizer(hydro_program,
                        assertions=hydro_workload.user_assertions).plan()
    adv = decomposition_advisories(hydro_program, plan)
    assert any(a.array == "duac" for a in adv), \
        "Fig 4-6's duac conflict must be diagnosed"


def test_report_lines():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(8,8)
      DO 10 j = 1, 8
        DO 10 i = 1, 8
          a(i,j) = 1.0
10    CONTINUE
      END
""")
    lines = report_lines(advise(prog))
    assert lines == ["no memory-performance advisories"]
