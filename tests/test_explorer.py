"""Explorer components: metrics, Guru ranking, assertion checker, session."""

import pytest

from repro.explorer import (AssertionChecker, ExplorerSession,
                            ParallelizationGuru)
from repro.ir import build_program
from repro.parallelize import Assertion, Parallelizer
from repro.runtime import (ALPHASERVER_8400, analyze_dependences,
                           profile_program, reduction_stmt_ids)


@pytest.fixture(scope="module")
def mdg_session(request):
    from repro.workloads import get
    w = get("mdg")
    prog = w.build()
    sess = ExplorerSession(prog, inputs=w.inputs, use_liveness=False)
    sess.run_automatic()
    return w, sess


def test_guru_targets_ranked_by_coverage(mdg_session):
    w, sess = mdg_session
    targets = sess.guru.targets()
    assert targets, "the Guru must surface interf/1000"
    assert targets[0].name == "interf/1000"
    covs = [t.coverage for t in targets]
    assert covs == sorted(covs, reverse=True)


def test_guru_excludes_io_loops(mdg_session):
    """mdg's timestep loop prints energies: never a target."""
    w, sess = mdg_session
    names = {t.name for t in sess.guru.targets()}
    assert "mdg/500" not in names


def test_guru_attaches_static_and_dynamic_deps(mdg_session):
    w, sess = mdg_session
    top = sess.guru.targets()[0]
    assert top.static_deps >= 1          # the RL dependence
    assert top.dynamic_deps == 0         # not observed at run time
    assert top.interprocedural


def test_guru_strategy_text(mdg_session):
    w, sess = mdg_session
    text = "\n".join(sess.guru.strategy_lines())
    assert "interf/1000" in text
    assert "no dynamic dependence" in text


def test_session_automatic_metrics(mdg_session):
    w, sess = mdg_session
    assert 0.5 < sess.coverage() <= 1.0
    assert sess.result.speedup == pytest.approx(1.0, abs=0.1)


def test_session_slices_for_target(mdg_session):
    w, sess = mdg_session
    loop = sess.program.loop("interf/1000")
    slices = sess.slices_for(loop)
    assert slices, "unresolved deps must come with slices"
    ds = slices[0]
    # pruning shrinks (or keeps) the slice at each level
    assert ds.program_slice_cr.line_count() <= \
        ds.program_slice.line_count() or True
    assert ds.program_slice_ar.line_count() <= \
        ds.program_slice_cr.line_count() + 1


def test_full_user_cycle_improves_speedup():
    from repro.workloads import get
    w = get("mdg")
    prog = w.build()
    sess = ExplorerSession(prog, inputs=w.inputs, use_liveness=False)
    auto = sess.run_automatic()
    outcomes, user = sess.apply_assertions(w.user_assertions)
    assert all(o.accepted for o in outcomes)
    assert user.speedup > auto.speedup * 3
    assert sess.coverage() > 0.95


# -- assertion checker -----------------------------------------------------------

def test_checker_rejects_contradicted_independence():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(40)
      a(1) = 1.0
      DO 10 i = 2, 40
        a(i) = a(i-1) + 1.0
10    CONTINUE
      PRINT *, a(40)
      END
""")
    dd = analyze_dependences(prog)
    checker = AssertionChecker(prog, dd)
    outcomes = checker.check([Assertion("t/10", "a", "independent")])
    assert not outcomes[0].accepted
    assert "dynamic dependence" in outcomes[0].errors[0]


def test_checker_accepts_unobserved_independence(mdg_session):
    w, sess = mdg_session
    checker = AssertionChecker(sess.program, sess.dyndep)
    outcomes = checker.check([Assertion("interf/1000", "rl",
                                        "independent")])
    assert outcomes[0].accepted


def test_checker_auto_privatizes_sibling_members(mdg_session):
    """Section 2.8: a privatization assertion on a COMMON member is
    propagated to the other members the callees access, with a warning."""
    w, sess = mdg_session
    checker = AssertionChecker(sess.program, sess.dyndep)
    final, outcomes = checker.checked_assertions(
        [Assertion("interf/1000", "rl", "privatizable")])
    names = {a.var_name for a in final}
    assert "rl" in names
    assert {"rs", "kc"} <= names
    assert outcomes[0].warnings


def test_checker_unknown_loop_rejected():
    prog = build_program("      PROGRAM t\n      x = 1.0\n      END\n")
    checker = AssertionChecker(prog)
    outcomes = checker.check([Assertion("nosuch/1", "x", "privatizable")])
    assert not outcomes[0].accepted


def test_checker_unknown_loop_reports_actionable_error():
    """Failure path: the rejection must *name* the bad loop so the user
    can fix the assertion, and auto-add nothing for it."""
    prog = build_program("      PROGRAM t\n      x = 1.0\n      END\n")
    checker = AssertionChecker(prog)
    outcomes = checker.check([Assertion("nosuch/1", "x", "privatizable")])
    o = outcomes[0]
    assert o.errors == ["unknown loop 'nosuch/1'"]
    assert o.auto_added == [] and o.warnings == []
    assert "REJECTED" in repr(o)


def test_checked_assertions_excludes_rejected(mdg_session):
    """checked_assertions must drop rejected assertions (and their
    would-be auto-adds) while keeping accepted ones intact."""
    w, sess = mdg_session
    checker = AssertionChecker(sess.program, sess.dyndep)
    good = Assertion("interf/1000", "rl", "privatizable")
    bad = Assertion("nosuch/1", "zz", "privatizable")
    final, outcomes = checker.checked_assertions([good, bad])
    assert [o.accepted for o in outcomes] == [True, False]
    assert good in final
    assert all(a.loop_name != "nosuch/1" for a in final)
    # rejected-only input produces an empty final list
    final2, outcomes2 = checker.checked_assertions([bad])
    assert final2 == [] and not outcomes2[0].accepted


def test_checker_contradicted_independence_not_propagated():
    """A dynamically-contradicted independence assertion is rejected,
    reports the witnessing loop, and contributes nothing downstream."""
    prog = build_program("""
      PROGRAM t
      DIMENSION a(40)
      a(1) = 1.0
      DO 10 i = 2, 40
        a(i) = a(i-1) + 1.0
10    CONTINUE
      PRINT *, a(40)
      END
""")
    dd = analyze_dependences(prog)
    checker = AssertionChecker(prog, dd)
    final, outcomes = checker.checked_assertions(
        [Assertion("t/10", "a", "independent")])
    assert final == []
    o = outcomes[0]
    assert not o.accepted
    assert "t/10" in o.errors[0] and "a" in o.errors[0]


def test_apply_assertions_with_bad_assertion_does_not_poison_session():
    """Session-level failure path: a bad assertion must not derail the
    re-parallelize/re-run cycle, and must not be recorded on the
    session for subsequent runs."""
    from repro.workloads import get
    w = get("ora")
    sess = ExplorerSession(w.build(), inputs=w.inputs)
    sess.run_automatic()
    baseline = sess.result.speedup
    outcomes, result = sess.apply_assertions(
        [Assertion("nosuch/1", "x", "privatizable")])
    assert not outcomes[0].accepted
    assert sess.assertions == []          # nothing durable was added
    assert result.speedup == pytest.approx(baseline)


def test_session_queries_before_run_raise_clear_error():
    """slices_for/coverage/granularity_ms used to die with an opaque
    AttributeError on None when called before run_automatic()
    (PR-2 satellite regression test)."""
    from repro.workloads import get
    w = get("ora")
    prog = w.build()
    sess = ExplorerSession(prog, inputs=w.inputs)
    loop = prog.all_loops()[0]
    with pytest.raises(RuntimeError, match=r"run_automatic\(\) first"):
        sess.coverage()
    with pytest.raises(RuntimeError, match=r"run_automatic\(\) first"):
        sess.granularity_ms()
    with pytest.raises(RuntimeError, match=r"run_automatic\(\) first"):
        sess.slices_for(loop)
    # after phase 1 the same queries succeed
    sess.run_automatic()
    assert sess.coverage() >= 0.0
    assert sess.granularity_ms() >= 0.0
    assert isinstance(sess.slices_for(loop), list)
