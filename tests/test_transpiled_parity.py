"""Bit-parity of the transpiled (code-generating) engine vs the oracle.

The transpiled engine emits plain Python source per instrumentation
variant (``plain`` / ``profile`` / ``dyndep``) and runs it; these tests
pin the contract the generator's optimizations (range-driven loops,
merged per-iteration charges, whole-loop precharging, invariant
hoisting, store-forwarding, coercion elision) must honor:

* **plain runs** are bit-identical to the tree-walking oracle — printed
  outputs, op counts, final COMMON memory — over every corpus workload,
* **codegen-time instrumentation** reproduces the oracle's analyzer
  state exactly: LoopProfiler numbers including first-touch order,
  dyndep census / witness pairs / sampling counters at stride 1 and 2,
* the op budget aborts with the *same* ``OpsBudgetExceeded`` message,
* unsupported observer configurations **fall back** to the closure
  engine (and still agree), with ``engine_label`` naming what ran,
* generated modules are **cached** — in-process memo and the persistent
  ``ArtifactStore`` — and repeat compilations skip codegen,
* generated-module **hygiene**: user identifiers echoing the preamble
  helper names never capture them.
"""

import numpy as np
import pytest

from repro.ir import build_program
from repro.runtime import (OpsBudgetExceeded, analyze_dependences,
                           profile_program, reduction_stmt_ids,
                           run_program)
from repro.runtime.compile_engine import engine_label, make_engine
from repro.runtime.dyndep import DynamicDependenceAnalyzer
from repro.runtime.profiler import LoopProfiler
from repro.runtime.transpile import (codegen_cache_stats, compile_program,
                                     load_module, reset_codegen_cache,
                                     set_codegen_store,
                                     transpile_to_python)
from repro.workloads import ALL

CORPUS = sorted(ALL)

_cache = {}


def _program(name):
    """Build each workload once so stmt_ids line up across engines."""
    if name not in _cache:
        w = ALL[name]
        _cache[name] = (build_program(w.source, w.name), w.inputs)
    return _cache[name]


def _profile_state(p):
    """Everything a LoopProfiler exposes, including first-touch order."""
    return ([(prof.loop.stmt_id, prof.total_ops, prof.invocations,
              prof.iterations) for prof in p.executed_loops()],
            p.total_ops)


def _dyndep_state(d):
    """Everything a DynamicDependenceAnalyzer exposes."""
    return (d.carried, d.carried_by_var, d.witnesses,
            d.sampled_accesses, d.skipped_accesses, d._invocations)


# -- whole-corpus parity ------------------------------------------------------

@pytest.mark.parametrize("name", CORPUS)
def test_plain_parity_full_corpus(name):
    prog, inputs = _program(name)
    tree = run_program(prog, inputs, engine="tree")
    trans = run_program(prog, inputs, engine="transpiled")
    assert engine_label(trans) == "transpiled/plain"
    assert trans.outputs == tree.outputs
    assert trans.ops == tree.ops, (
        f"{name}: op-count drift tree={tree.ops} transpiled={trans.ops}")
    assert set(trans.commons) == set(tree.commons)
    for cname, buf in tree.commons.items():
        assert np.array_equal(trans.commons[cname].data, buf.data), (
            f"{name}: COMMON /{cname}/ contents differ")


@pytest.mark.parametrize("name", CORPUS)
def test_profiler_parity_full_corpus(name):
    prog, inputs = _program(name)
    tree = profile_program(prog, inputs, engine="tree")
    fast = profile_program(prog, inputs, engine="transpiled")
    assert engine_label(fast.interpreter) == "transpiled/profile"
    assert _profile_state(fast) == _profile_state(tree)


@pytest.mark.parametrize("stride", [1, 2])
@pytest.mark.parametrize("name", CORPUS)
def test_dyndep_parity_full_corpus(name, stride):
    prog, inputs = _program(name)
    skip = reduction_stmt_ids(prog)
    tree = analyze_dependences(prog, inputs, skip_stmt_ids=skip,
                               sample_stride=stride, engine="tree")
    fast = analyze_dependences(prog, inputs, skip_stmt_ids=skip,
                               sample_stride=stride, engine="transpiled")
    assert engine_label(fast.interpreter) == "transpiled/dyndep"
    assert _dyndep_state(fast) == _dyndep_state(tree)


# -- budget enforcement -------------------------------------------------------

def test_budget_abort_message_identical_across_engines():
    """All three engines must raise the *same* unified exception with
    the *same* message (the abort may land a few ops apart — the
    generated code charges loops in merged batches — but the contract
    is the error type and text, which carry only ``max_ops``)."""
    prog, inputs = _program("mdg")
    total = run_program(prog, inputs, engine="tree").ops
    budget = max(1, total // 2)
    messages = []
    for engine in ("tree", "compiled", "transpiled"):
        with pytest.raises(OpsBudgetExceeded) as exc_info:
            run_program(prog, inputs, max_ops=budget, engine=engine)
        assert exc_info.value.max_ops == budget
        messages.append(str(exc_info.value))
    assert len(set(messages)) == 1
    assert messages[0] == f"operation budget exceeded (max_ops={budget})"


# -- fallback to the closure engine -------------------------------------------

def test_extra_observers_fall_back_and_agree():
    """Profiler + dyndep attached together has no codegen variant: the
    transpiled engine must delegate to the closure engine's generic
    observer path and the pair must still match the oracle pair."""
    prog, inputs = _program("mgrid")
    p, d = LoopProfiler(), DynamicDependenceAnalyzer()
    eng = make_engine(prog, inputs, observers=[], engine="transpiled")
    p.attach(eng)
    d.attach(eng)
    eng.run()
    p.finish()
    assert engine_label(eng) == "compiled/full"
    tp, td = LoopProfiler(), DynamicDependenceAnalyzer()
    teng = make_engine(prog, inputs, observers=[], engine="tree")
    tp.attach(teng)
    td.attach(teng)
    teng.run()
    tp.finish()
    assert _profile_state(p) == _profile_state(tp)
    assert _dyndep_state(d) == _dyndep_state(td)


def test_specialize_false_falls_back_same_results():
    prog, inputs = _program("mdg")
    fast_p = LoopProfiler()
    fast = make_engine(prog, inputs, observers=[], engine="transpiled")
    fast_p.attach(fast)
    fast.run()
    fast_p.finish()
    assert engine_label(fast) == "transpiled/profile"
    slow_p = LoopProfiler()
    slow = make_engine(prog, inputs, observers=[], engine="transpiled",
                       specialize=False)
    slow_p.attach(slow)
    slow.run()
    slow_p.finish()
    assert engine_label(slow) == "compiled/loops"
    assert _profile_state(fast_p) == _profile_state(slow_p)


def test_parallel_executor_falls_back_and_matches():
    """The parallel executor attaches its own cost observer, which has
    no codegen variant — engine="transpiled" must fall back to the
    closure engine and produce the identical machine account."""
    from repro.parallelize import Parallelizer
    from repro.runtime import ALPHASERVER_8400
    from repro.runtime.parallel_exec import ParallelExecutor
    prog, inputs = _program("mdg")
    plan = Parallelizer(prog).plan()
    runs = {}
    for engine in ("compiled", "transpiled"):
        ex = ParallelExecutor(prog, plan, ALPHASERVER_8400,
                              inputs=inputs, engine=engine)
        runs[engine] = ex.run()
        assert engine_label(ex.interp) == "compiled/full", engine
    comp, trans = runs["compiled"], runs["transpiled"]
    assert trans.par_ops == comp.par_ops
    assert trans.speedup == comp.speedup
    assert trans.outputs == comp.outputs


# -- codegen caching ----------------------------------------------------------

def test_compile_program_memoizes_on_source_hash():
    set_codegen_store(None)      # isolate from scheduler-installed stores
    reset_codegen_cache()
    prog, _ = _program("ora")
    before = codegen_cache_stats()
    run1 = compile_program(prog)
    mid = codegen_cache_stats()
    assert mid["miss"] == before["miss"] + 1
    run2 = compile_program(prog)
    after = codegen_cache_stats()
    assert run2 is run1, "repeat compile must return the memoized module"
    assert after["hit"] == mid["hit"] + 1
    assert after["miss"] == mid["miss"]
    # a structurally identical rebuild (same source hash) also hits
    w = ALL["ora"]
    rebuilt = build_program(w.source, w.name)
    assert compile_program(rebuilt) is run1


def test_persistent_store_serves_generated_source(tmp_path):
    """With an ArtifactStore installed, a cold process (simulated by
    dropping the in-process memo) re-uses the stored source instead of
    re-running codegen."""
    from repro.service.artifacts import ArtifactStore
    prog, inputs = _program("ora")
    oracle = run_program(prog, inputs, engine="tree")
    set_codegen_store(ArtifactStore(str(tmp_path)))
    try:
        reset_codegen_cache()
        mod = load_module(prog)
        assert codegen_cache_stats() == {"hit": 0, "miss": 1}
        reset_codegen_cache()                  # "new process", store warm
        warm = load_module(prog)
        assert codegen_cache_stats() == {"hit": 1, "miss": 0}
        assert warm.source == mod.source
        assert warm.namespace["run"](list(inputs)) == \
            pytest.approx([float(v) for v in oracle.outputs])
    finally:
        set_codegen_store(None)
        reset_codegen_cache()


def test_engine_tags_codegen_span_with_cache_state():
    from repro.obs import Tracer, activate
    prog, inputs = _program("ora")
    set_codegen_store(None)      # isolate from scheduler-installed stores
    reset_codegen_cache()
    tracer = Tracer()
    with activate(tracer):
        run_program(prog, inputs, engine="transpiled")
        run_program(prog, inputs, engine="transpiled")
    spans = [s for s in tracer.to_dicts() if s["name"] == "codegen"]
    assert [s["tags"]["cached"] for s in spans] == [False, True]
    assert {s["tags"]["engine"] for s in spans} == {"transpiled"}


# -- generated-module hygiene -------------------------------------------------

HYGIENE_SRC = """
      PROGRAM run
      COMMON /cm/ out(4), idiv
      DIMENSION inputs(3)
      idiv = 9.0
      DO 10 mo = 1, 3
        inputs(mo) = mo * 1.5
10    CONTINUE
      CALL pop(inputs, 3)
      s = inputs(2) + out(1) + idiv / 2.0
      PRINT *, s, out(1), idiv
      END
      SUBROUTINE pop(wr, n)
      DIMENSION wr(*)
      COMMON /cm/ out(4), idiv
      DO 20 rd = 1, n
        wr(rd) = wr(rd) + 1.0
        out(1) = out(1) + wr(rd)
20    CONTINUE
      END
"""


def test_user_names_cannot_capture_preamble_helpers():
    """A program whose identifiers echo the generated module's helper
    names (``run``, ``cm``, ``out``, ``inputs``, ``idiv``, ``pop``,
    ``wr``, ``s``, ``mo``) must transpile, run, and agree with the
    oracle — name mangling keeps user symbols and helpers disjoint."""
    prog = build_program(HYGIENE_SRC, "hygiene")
    src = transpile_to_python(prog)
    # the helpers survive under their reserved (underscored) names
    for helper in ("_idiv(", "_Stop", "_cm", "_out", "_in"):
        assert helper in src, f"preamble helper {helper!r} missing"
    # no generated name collides with a helper: user symbols are
    # prefix-mangled (v_/a_/p_/_c_), so plain helper names never rebind
    for banned in ("\nidiv =", "\nout =", "\ncm =", "\nrun ="):
        assert banned not in src
    tree = run_program(prog, engine="tree")
    trans = run_program(prog, engine="transpiled")
    assert engine_label(trans) == "transpiled/plain"
    assert trans.outputs == tree.outputs
    assert trans.ops == tree.ops
    for cname, buf in tree.commons.items():
        assert np.array_equal(trans.commons[cname].data, buf.data)
