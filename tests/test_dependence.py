"""Polyhedral dependence tests on classic loop patterns."""

import pytest

from repro.analysis import ArrayDataFlow, SymbolicAnalysis
from repro.analysis.dependence import (anti_dependence, flow_into_exposed,
                                       loop_carried_conflict)
from repro.ir import build_program


def loop_facts(src, loop_name, var):
    prog = build_program(src)
    sa = SymbolicAnalysis(prog)
    df = ArrayDataFlow(prog, sa)
    loop = prog.loop(loop_name)
    psym = sa.result(prog.procedure(loop.proc_name))
    body = df.loop_body_summary[loop.stmt_id]
    key = next(k for k in body.keys()
               if len(k) > 2 and k[2] == var or
               (k[0] == "cm" and var in body.vars[k].names))
    vs = body.vars[key]
    return {
        "carried": loop_carried_conflict(vs, loop, psym),
        "flow": flow_into_exposed(vs, loop, psym),
        "anti": anti_dependence(vs, loop, psym),
    }


def test_disjoint_writes_no_conflict():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION a(100)
      DO 10 i = 1, 50
        a(i) = i * 1.0
10    CONTINUE
      END
""", "t/10", "a")
    assert not facts["carried"]


def test_true_recurrence_detected():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION a(100)
      DO 10 i = 2, 50
        a(i) = a(i-1) + 1.0
10    CONTINUE
      END
""", "t/10", "a")
    assert facts["carried"] and facts["flow"]


def test_anti_dependence_only():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION a(100)
      DO 10 i = 1, 49
        a(i) = a(i+1) * 0.5
10    CONTINUE
      END
""", "t/10", "a")
    assert facts["carried"]          # anti conflicts count for W/R overlap
    assert facts["anti"]
    assert not facts["flow"]         # no flow into exposed reads


def test_stride_separated_writes():
    # writes a(2i), reads a(2i+1): never conflict
    facts = loop_facts("""
      PROGRAM t
      DIMENSION a(200)
      DO 10 i = 1, 50
        a(2*i) = a(2*i+1) + 1.0
10    CONTINUE
      END
""", "t/10", "a")
    assert not facts["carried"]


def test_offset_write_regions_conflict():
    # writes a(i) and a(i+5): iterations i and i+5 collide
    facts = loop_facts("""
      PROGRAM t
      DIMENSION a(200)
      DO 10 i = 1, 50
        a(i) = 1.0
        a(i+5) = 2.0
10    CONTINUE
      END
""", "t/10", "a")
    assert facts["carried"]


def test_scalar_reuse_is_privatizable_pattern():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION b(100)
      DO 10 i = 1, 50
        tmp = i * 2.0
        b(i) = tmp + 1.0
10    CONTINUE
      END
""", "t/10", "tmp")
    assert facts["carried"]          # scalar written every iteration
    assert not facts["flow"]         # but values never cross iterations


def test_scalar_cross_iteration_flow():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION b(100)
      s = 0.0
      DO 10 i = 1, 50
        b(i) = s
        s = b(i) + i
10    CONTINUE
      END
""", "t/10", "s")
    assert facts["carried"] and facts["flow"]


def test_nonaffine_subscript_is_conservative():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION a(100), idx(100)
      INTEGER idx
      DO 10 i = 1, 50
        a(idx(i)) = 1.0
10    CONTINUE
      END
""", "t/10", "a")
    assert facts["carried"]          # unknown locations: assume conflict


def test_outer_index_makes_columns_independent():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION a(64,64)
      DO 10 j = 1, 32
        DO 5 i = 2, 32
          a(i,j) = a(i-1,j) + 1.0
5       CONTINUE
10    CONTINUE
      END
""", "t/10", "a")
    assert not facts["carried"]      # j-columns are disjoint


def test_write_then_read_same_iteration():
    facts = loop_facts("""
      PROGRAM t
      DIMENSION w(100), b(100)
      DO 10 i = 1, 50
        w(i) = i * 1.0
        b(i) = w(i) * 2.0
10    CONTINUE
      END
""", "t/10", "w")
    assert not facts["carried"]
