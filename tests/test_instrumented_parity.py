"""Bit-parity of the instrumented fast path vs the tree-walking oracle.

The closure-compiled engine compiles a lone fresh ``LoopProfiler`` /
``DynamicDependenceAnalyzer`` *into* the generated closures
(``VARIANT_PROFILE`` / ``VARIANT_DYNDEP``): loop drivers do their own
op-delta accounting, dyndep shadow memory is flattened to per-buffer
lists, and the sampling window is maintained at loop events instead of
per access.  These tests pin the contract those optimizations must
honor — the specialized run is **bit-identical** to the same observer
attached to the tree-walking oracle:

* identical ``LoopProfile`` numbers *and first-touch registration
  order* (``executed_loops()`` ordering is observable via reports),
* identical detected-dependence sets, per-variable counts, witness
  pairs, invocation counts and sampling counters at stride 1 and 2,
* over every workload in ``workloads/corpus.py``,
* with graceful fallback to the generic observer path whenever the
  specialization preconditions fail (stale observer, extra observers,
  ``specialize=False``) — and the fallback agrees too.
"""

import pytest

from repro.ir import build_program
from repro.runtime import (analyze_dependences, profile_program,
                           reduction_stmt_ids)
from repro.runtime.compile_engine import engine_label, make_engine
from repro.runtime.dyndep import DynamicDependenceAnalyzer
from repro.runtime.profiler import LoopProfiler
from repro.workloads import ALL

CORPUS = sorted(ALL)

_cache = {}


def _program(name):
    """Build each workload once so stmt_ids line up across engines."""
    if name not in _cache:
        w = ALL[name]
        _cache[name] = (build_program(w.source, w.name), w.inputs)
    return _cache[name]


def _profile_state(p):
    """Everything a LoopProfiler exposes, including first-touch order."""
    return ([(prof.loop.stmt_id, prof.total_ops, prof.invocations,
              prof.iterations) for prof in p.executed_loops()],
            p.total_ops)


def _dyndep_state(d):
    """Everything a DynamicDependenceAnalyzer exposes."""
    return (d.carried, d.carried_by_var, d.witnesses,
            d.sampled_accesses, d.skipped_accesses, d._invocations)


# -- whole-corpus parity ------------------------------------------------------

@pytest.mark.parametrize("name", CORPUS)
def test_profiler_parity_full_corpus(name):
    prog, inputs = _program(name)
    tree = profile_program(prog, inputs, engine="tree")
    fast = profile_program(prog, inputs, engine="compiled")
    assert engine_label(tree.interpreter) == "tree"
    assert engine_label(fast.interpreter) == "compiled/profile"
    assert _profile_state(fast) == _profile_state(tree)


@pytest.mark.parametrize("stride", [1, 2])
@pytest.mark.parametrize("name", CORPUS)
def test_dyndep_parity_full_corpus(name, stride):
    prog, inputs = _program(name)
    skip = reduction_stmt_ids(prog)
    tree = analyze_dependences(prog, inputs, skip_stmt_ids=skip,
                               sample_stride=stride, engine="tree")
    fast = analyze_dependences(prog, inputs, skip_stmt_ids=skip,
                               sample_stride=stride, engine="compiled")
    assert engine_label(tree.interpreter) == "tree"
    assert engine_label(fast.interpreter) == "compiled/dyndep"
    assert _dyndep_state(fast) == _dyndep_state(tree)


# -- specialization preconditions and fallback --------------------------------

def _run_profiler(prog, inputs, **kw):
    p = LoopProfiler()
    eng = make_engine(prog, inputs, observers=[], engine="compiled", **kw)
    p.attach(eng)
    eng.run()
    p.finish()
    return p, eng


def _run_dyndep(prog, inputs, analyzer=None, **kw):
    d = analyzer or DynamicDependenceAnalyzer()
    eng = make_engine(prog, inputs, observers=[], engine="compiled", **kw)
    d.attach(eng)
    eng.run()
    return d, eng


def test_specialize_false_forces_generic_path_same_results():
    prog, inputs = _program("mdg")
    fast, feng = _run_profiler(prog, inputs)
    slow, seng = _run_profiler(prog, inputs, specialize=False)
    assert engine_label(feng) == "compiled/profile"
    assert engine_label(seng) == "compiled/loops"
    assert _profile_state(fast) == _profile_state(slow)

    dfast, dfeng = _run_dyndep(prog, inputs)
    dslow, dseng = _run_dyndep(prog, inputs, specialize=False)
    assert engine_label(dfeng) == "compiled/dyndep"
    assert engine_label(dseng) == "compiled/full"
    assert _dyndep_state(dfast) == _dyndep_state(dslow)


def test_stale_analyzer_falls_back_to_generic_path():
    """A dyndep analyzer carrying state from an earlier run must NOT be
    compiled in (the fill-back would double-count); the engine keeps the
    generic observer protocol and the analyzer accumulates as the
    oracle would."""
    prog, inputs = _program("hydro2d")
    d, eng1 = _run_dyndep(prog, inputs)
    assert engine_label(eng1) == "compiled/dyndep"
    once = _dyndep_state(d)
    d2, eng2 = _run_dyndep(prog, inputs, analyzer=d)   # reuse, now dirty
    assert engine_label(eng2) == "compiled/full"
    # oracle reference: one fresh run + one accumulating rerun
    ref = DynamicDependenceAnalyzer()
    for _ in range(2):
        t = make_engine(prog, inputs, observers=[], engine="tree")
        ref.attach(t)
        t.run()
    assert _dyndep_state(d2) == _dyndep_state(ref)
    assert d2.sampled_accesses == 2 * once[3]


def test_extra_observer_falls_back_to_generic_path():
    """Profiler + dyndep attached together: no lone observer, so no
    specialization — but the pair must still match the oracle pair."""
    prog, inputs = _program("mgrid")
    p, d = LoopProfiler(), DynamicDependenceAnalyzer()
    eng = make_engine(prog, inputs, observers=[], engine="compiled")
    p.attach(eng)
    d.attach(eng)
    eng.run()
    p.finish()
    assert engine_label(eng) == "compiled/full"
    tp, td = LoopProfiler(), DynamicDependenceAnalyzer()
    teng = make_engine(prog, inputs, observers=[], engine="tree")
    tp.attach(teng)
    td.attach(teng)
    teng.run()
    tp.finish()
    assert _profile_state(p) == _profile_state(tp)
    assert _dyndep_state(d) == _dyndep_state(td)


# -- early-exit control flow ---------------------------------------------------

EXIT_SRC = """
      PROGRAM t
      DIMENSION a(50)
      s = 0.0
      DO 100 it = 1, 5
        DO 10 i = 1, 50
          a(i) = a(i) + i * 1.0
          IF (i .GT. 12) EXIT
          s = s + a(i)
10      CONTINUE
100   CONTINUE
      PRINT *, s
      END
"""

STOP_SRC = """
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 1, 50
        a(i) = i * 2.0
        IF (i .GT. 7) THEN
          STOP
        END IF
10    CONTINUE
      PRINT *, a(1)
      END
"""


@pytest.mark.parametrize("src", [EXIT_SRC, STOP_SRC],
                         ids=["exit", "stop"])
def test_profile_totals_match_on_early_loop_exit(src):
    """Loops left mid-iteration via EXIT/STOP: the fast path accumulates
    totals in a ``finally`` at the oracle's on_loop_exit point, so
    partial iterations charge identically on both engines."""
    prog = build_program(src)
    tree = profile_program(prog, engine="tree")
    fast = profile_program(prog, engine="compiled")
    assert engine_label(fast.interpreter) == "compiled/profile"
    assert _profile_state(fast) == _profile_state(tree)
    # the early exit actually happened: iterations < trip count bound
    inner = prog.loop("t/10")
    assert fast.profile(inner).iterations < 50 * \
        fast.profile(inner).invocations


@pytest.mark.parametrize("src", [EXIT_SRC, STOP_SRC],
                         ids=["exit", "stop"])
def test_dyndep_state_matches_on_early_loop_exit(src):
    prog = build_program(src)
    tree = analyze_dependences(prog, engine="tree")
    fast = analyze_dependences(prog, engine="compiled")
    assert engine_label(fast.interpreter) == "compiled/dyndep"
    assert _dyndep_state(fast) == _dyndep_state(tree)


def test_profile_partial_data_survives_ops_budget_abort():
    """The oracle keeps whatever it observed before the op budget blew;
    the fast path's fill-back runs in a ``finally`` so it must too.

    Exact op totals legitimately differ by a few ops here: the compiled
    engine charges ops in per-block batches, so the budget trips a
    handful of ops later than the oracle's finer-grained checks.  That
    skew exists for *clean* execution too and only becomes observable
    at the abort point; the structural profile (which loops, in which
    first-touch order, with which invocation/iteration counts) must
    still match, and per-loop totals may differ by at most the global
    abort skew."""
    from repro.runtime.interpreter import OpsBudgetExceeded
    results = []
    prog, inputs = _program("mdg")
    for engine in ("tree", "compiled"):
        prof = LoopProfiler()
        eng = make_engine(prog, inputs, observers=[], max_ops=20_000,
                          engine=engine)
        prof.attach(eng)
        with pytest.raises(OpsBudgetExceeded):
            eng.run()
        prof.finish()
        results.append(prof)
    tree, fast = results
    t_loops = tree.executed_loops()
    f_loops = fast.executed_loops()
    assert t_loops, "budget abort must leave partial profiles"
    assert [(p.loop.stmt_id, p.invocations, p.iterations)
            for p in f_loops] == \
           [(p.loop.stmt_id, p.invocations, p.iterations)
            for p in t_loops]
    skew = abs(fast.total_ops - tree.total_ops)
    assert skew < 1_000, "abort points wildly diverged"
    for f, t in zip(f_loops, t_loops):
        assert abs(f.total_ops - t.total_ops) <= skew


# -- witness bookkeeping -------------------------------------------------------

MANY_READERS_SRC = """
      PROGRAM t
      DIMENSION a(40)
      a(1) = 1.0
      DO 10 i = 2, 40
        a(i) = a(i-1) + 1.0
        b1 = a(i-1) * 2.0
        b2 = a(i-1) * 3.0
        b3 = a(i-1) * 4.0
        b4 = a(i-1) * 5.0
10    CONTINUE
      PRINT *, a(40)
      END
"""


@pytest.mark.parametrize("engine", ["tree", "compiled"])
def test_witnesses_dedupe_before_cap(engine):
    """A hot (writer, reader) pair repeating every iteration is ONE
    witness; the cap applies to *distinct* pairs, so later distinct
    readers still earn a slot instead of being crowded out."""
    prog = build_program(MANY_READERS_SRC)
    dd = analyze_dependences(prog, engine=engine)
    loop = prog.loop("t/10")
    pairs = dd.witnesses[loop.stmt_id]
    assert len(pairs) == 4                       # _MAX_WITNESSES
    assert len(set(pairs)) == 4                  # all distinct
    # 5 distinct reader lines exist; the first four in program order win
    reader_lines = [r for _, r in pairs]
    assert reader_lines == sorted(reader_lines)
    # far more dependences than witnesses: the census kept counting
    assert dd.carried[loop.stmt_id] > 4


def test_witness_pairs_identical_across_engines():
    prog = build_program(MANY_READERS_SRC)
    tree = analyze_dependences(prog, engine="tree")
    fast = analyze_dependences(prog, engine="compiled")
    assert fast.witnesses == tree.witnesses
