"""Shared fixtures.  Expensive analyses are session-scoped and shared."""

import pytest

from repro.ir import build_program


SIMPLE_SRC = """
      PROGRAM main
      DIMENSION a(100), b(100)
      INTEGER n
      n = 50
      CALL fill(a, n)
      DO 20 i = 2, n
        b(i) = a(i-1) + a(i)
20    CONTINUE
      s = 0.0
      DO 30 i = 1, n
        s = s + b(i)
30    CONTINUE
      PRINT *, s
      END

      SUBROUTINE fill(q, m)
      DIMENSION q(*)
      DO 10 j = 1, m
        q(j) = j * 0.5
10    CONTINUE
      END
"""


@pytest.fixture(scope="session")
def simple_program():
    return build_program(SIMPLE_SRC, "simple")


@pytest.fixture()
def fresh_simple_program():
    return build_program(SIMPLE_SRC, "simple")


@pytest.fixture(scope="session")
def mdg_workload():
    from repro.workloads import get
    return get("mdg")


@pytest.fixture(scope="session")
def mdg_program(mdg_workload):
    return mdg_workload.build()


@pytest.fixture(scope="session")
def hydro_workload():
    from repro.workloads import get
    return get("hydro")


@pytest.fixture(scope="session")
def hydro_program(hydro_workload):
    return hydro_workload.build()


@pytest.fixture(scope="session")
def mdg_dataflow(mdg_program):
    from repro.analysis import ArrayDataFlow
    return ArrayDataFlow(mdg_program)


@pytest.fixture(scope="session")
def hydro_dataflow(hydro_program):
    from repro.analysis import ArrayDataFlow
    return ArrayDataFlow(hydro_program)
