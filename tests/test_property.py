"""Property-based tests (hypothesis) on the core data structures.

The polyhedral layer is the foundation of every analysis: these properties
check its algebra against a brute-force integer-enumeration oracle on
small boxes, and check the interpreter against a Python oracle.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.poly import Constraint, LinExpr, Section, System, range_section
from repro.analysis.summaries import VarSummary, close_over_loop, meet, \
    transfer


# ---------------------------------------------------------------------------
# LinExpr is a commutative module over Q
# ---------------------------------------------------------------------------

names = st.sampled_from(["x", "y", "z"])
coeffs = st.integers(min_value=-7, max_value=7)


@st.composite
def linexprs(draw):
    terms = draw(st.dictionaries(names, coeffs, max_size=3))
    const = draw(coeffs)
    return LinExpr(terms, const)


@given(linexprs(), linexprs())
def test_linexpr_addition_commutes(a, b):
    assert a + b == b + a


@given(linexprs(), linexprs(), linexprs())
def test_linexpr_addition_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(linexprs())
def test_linexpr_additive_inverse(a):
    assert (a + (-a)).is_constant()
    assert (a - a).const == 0


@given(linexprs(), st.integers(min_value=-5, max_value=5))
def test_linexpr_scalar_distributes(a, k):
    assert a * k == LinExpr({v: c * k for v, c in a.coeffs.items()},
                            a.const * k)


@given(linexprs())
def test_substitute_self_is_identity(a):
    assert a.substitute("x", LinExpr.var("x")) == a


# ---------------------------------------------------------------------------
# 1-D interval sections against an explicit set oracle
# ---------------------------------------------------------------------------

bounds = st.integers(min_value=0, max_value=12)


@st.composite
def intervals(draw):
    lo = draw(bounds)
    hi = draw(bounds)
    if lo > hi:
        lo, hi = hi, lo
    return (lo, hi)


def as_set(iv):
    return set(range(iv[0], iv[1] + 1))


def section_points(sec: Section, limit: int = 13):
    """Enumerate integer points 0..limit of a 1-D section."""
    out = set()
    for v in range(limit + 1):
        probe = Section.point([LinExpr.constant(v)])
        if sec.intersects(probe):
            out.add(v)
    return out


@settings(max_examples=40, deadline=None)
@given(intervals(), intervals())
def test_union_matches_set_oracle(a, b):
    sec = range_section(*a).union(range_section(*b))
    assert section_points(sec) == as_set(a) | as_set(b)


@settings(max_examples=40, deadline=None)
@given(intervals(), intervals())
def test_intersection_matches_set_oracle(a, b):
    sec = range_section(*a).intersect(range_section(*b))
    assert section_points(sec) == as_set(a) & as_set(b)


@settings(max_examples=40, deadline=None)
@given(intervals(), intervals())
def test_subtract_overapproximates_difference(a, b):
    """subtract may over-approximate but must contain the true difference
    and never exceed the minuend."""
    sec = range_section(*a).subtract(range_section(*b))
    pts = section_points(sec)
    assert as_set(a) - as_set(b) <= pts <= as_set(a)


@settings(max_examples=40, deadline=None)
@given(intervals(), intervals())
def test_exact_difference_for_intervals(a, b):
    # for single intervals the difference is exact
    sec = range_section(*a).subtract(range_section(*b))
    assert section_points(sec) == as_set(a) - as_set(b)


@settings(max_examples=40, deadline=None)
@given(intervals(), intervals())
def test_containment_consistent_with_oracle(a, b):
    A, B = range_section(*a), range_section(*b)
    if A.contains(B):
        assert as_set(b) <= as_set(a)


@settings(max_examples=30, deadline=None)
@given(intervals())
def test_self_algebra(a):
    A = range_section(*a)
    assert A.contains(A)
    assert A.subtract(A).is_empty()
    assert A.intersect(A).contains(A)
    assert not A.is_empty()


# ---------------------------------------------------------------------------
# Summary operator laws
# ---------------------------------------------------------------------------

@st.composite
def summaries(draw):
    r = draw(intervals())
    w = draw(intervals())
    must = draw(st.booleans())
    return transfer(VarSummary.for_read(range_section(*r)),
                    VarSummary.for_write(range_section(*w), must=must))


@settings(max_examples=30, deadline=None)
@given(summaries(), summaries(), summaries())
def test_transfer_associative_on_may_sets(a, b, c):
    left = transfer(transfer(a, b), c)
    right = transfer(a, transfer(b, c))
    assert section_points(left.read) == section_points(right.read)
    assert section_points(left.may_write) == section_points(right.may_write)
    assert section_points(left.must_write) == \
        section_points(right.must_write)
    assert section_points(left.exposed) == section_points(right.exposed)


@settings(max_examples=30, deadline=None)
@given(summaries(), summaries())
def test_meet_commutative(a, b):
    ab, ba = meet(a, b), meet(b, a)
    assert section_points(ab.read) == section_points(ba.read)
    assert section_points(ab.must_write) == section_points(ba.must_write)


@settings(max_examples=30, deadline=None)
@given(summaries())
def test_meet_idempotent(a):
    aa = meet(a, a)
    assert section_points(aa.read) == section_points(a.read)
    assert section_points(aa.exposed) == section_points(a.exposed)
    assert section_points(aa.must_write) == section_points(a.must_write)


@settings(max_examples=30, deadline=None)
@given(summaries(), summaries())
def test_exposed_subset_of_read(a, b):
    out = transfer(a, b)
    assert section_points(out.exposed) <= section_points(out.read)
    assert section_points(out.must_write) <= section_points(out.may_write)


# ---------------------------------------------------------------------------
# Interpreter against a Python oracle
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=5))
def test_interpreter_sum_oracle(n, step):
    from repro.ir import build_program
    from repro.runtime import run_program
    src = f"""
      PROGRAM t
      s = 0.0
      DO 10 i = 1, {n}, {step}
        s = s + i
10    CONTINUE
      PRINT *, s
      END
"""
    out = run_program(build_program(src)).outputs
    assert out == [float(sum(range(1, n + 1, step)))]


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                max_size=12))
def test_interpreter_minmax_oracle(values):
    from repro.ir import build_program
    from repro.runtime import run_program
    n = len(values)
    src_vals = "\n".join(
        f"      a({k+1}) = {v}.0" for k, v in enumerate(values))
    src = f"""
      PROGRAM t
      DIMENSION a({n})
{src_vals}
      lo = a(1)
      hi = a(1)
      DO 10 i = 1, {n}
        IF (a(i) .LT. lo) lo = a(i)
        IF (a(i) .GT. hi) hi = a(i)
10    CONTINUE
      PRINT *, lo, hi
      END
"""
    out = run_program(build_program(src)).outputs
    assert out == [float(min(values)), float(max(values))]
