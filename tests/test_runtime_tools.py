"""Execution analyzers (profiler, dyndep) and the parallel simulator."""

import pytest

from repro.ir import build_program
from repro.parallelize import Assertion, Parallelizer
from repro.runtime import (ALPHASERVER_8400, MACHINES, NAIVE, STAGGERED,
                           ATOMIC, MINIMIZED, ParallelExecutor,
                           analyze_dependences, execute_parallel,
                           profile_program, reduction_stmt_ids,
                           with_processors)


NESTED_SRC = """
      PROGRAM t
      DIMENSION a(40)
      DO 100 it = 1, 4
        DO 10 i = 1, 40
          a(i) = a(i) + it * i
10      CONTINUE
100   CONTINUE
      PRINT *, a(3)
      END
"""


# -- Loop Profile Analyzer ----------------------------------------------------

def test_profiler_counts_invocations_and_coverage():
    prog = build_program(NESTED_SRC)
    prof = profile_program(prog)
    outer = prog.loop("t/100")
    inner = prog.loop("t/10")
    assert prof.profile(outer).invocations == 1
    assert prof.profile(inner).invocations == 4
    assert prof.profile(inner).iterations == 160
    assert prof.coverage_of(outer) > prof.coverage_of(inner) * 0.9
    assert 0 < prof.coverage_of(inner) <= prof.coverage_of(outer) <= 1.0


def test_profiler_granularity_scales_with_machine():
    prog = build_program(NESTED_SRC)
    prof = profile_program(prog)
    inner = prog.loop("t/10")
    fast = prof.granularity_ms(inner, MACHINES["alphaserver"])
    assert fast > 0


# -- Dynamic Dependence Analyzer -----------------------------------------------

def test_dyndep_detects_real_recurrence():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(40)
      a(1) = 1.0
      DO 10 i = 2, 40
        a(i) = a(i-1) + 1.0
10    CONTINUE
      PRINT *, a(40)
      END
""")
    dd = analyze_dependences(prog)
    assert dd.has_carried_dependence(prog.loop("t/10"))
    assert dd.dependence_count(prog.loop("t/10")) > 0


RECURRENCE_SRC = """
      PROGRAM t
      DIMENSION a(60)
      a(1) = 1.0
      DO 10 i = 2, 60
        a(i) = a(i-1) + 1.0
10    CONTINUE
      PRINT *, a(60)
      END
"""


@pytest.mark.parametrize("stride", [2, 3, 7])
def test_dyndep_sampling_keeps_distance_one_dependences(stride):
    """``sample_stride > 1`` skips batches of iterations (section 2.5.2)
    but must still observe a distance-1 loop-carried flow dependence:
    the sampling window keeps adjacent iteration pairs (k*stride,
    k*stride + 1), so the write at the end of one sampled iteration is
    seen by the read at the start of the next."""
    prog = build_program(RECURRENCE_SRC)
    dd = analyze_dependences(prog, sample_stride=stride)
    loop = prog.loop("t/10")
    assert dd.has_carried_dependence(loop)
    # sampling thins the census but must never zero it out
    full = analyze_dependences(prog)
    assert 0 < dd.dependence_count(loop) <= full.dependence_count(loop)


#: Corpus subset for the stride regression: includes nested-loop
#: workloads (doduc, dyfesm, mgrid, hydro) that broke naive all-loop
#: window schemes, and write-heavy ones (track, ear) whose instrumented
#: accesses are dominated by stores.
_STRIDE_CORPUS = ["track", "ear", "doduc", "dyfesm", "mgrid", "hydro"]


@pytest.mark.parametrize("name", _STRIDE_CORPUS)
def test_dyndep_stride_two_skips_batches_without_losing_deps(name):
    """Regression for the §2.5.2 sampling bug: the old predicate
    ``iteration % stride in (0, 1)`` sampled 100% of iterations at
    ``sample_stride=2`` (every counter is ≡ 0 or ≡ 1 mod 2), so the
    batch-skipping speedup was a no-op.  The fixed innermost-loop window
    must (a) record strictly fewer accesses at stride 2 than stride 1
    and (b) detect the identical set of loop-carried dependences *on
    this corpus* (sampling is heuristic in general — a distance-1 pair
    straddling a window boundary can be sampled out)."""
    from repro.workloads import get
    w = get(name)
    prog = build_program(w.source, w.name)       # build ONCE: stmt_ids
    d1 = analyze_dependences(prog, w.inputs, sample_stride=1)
    d2 = analyze_dependences(prog, w.inputs, sample_stride=2)
    assert set(d2.carried) == set(d1.carried), (
        f"{name}: stride-2 sampling changed the detected-dependence set")
    assert d1.sampled_accesses > 0
    assert d2.sampled_accesses < d1.sampled_accesses, (
        f"{name}: stride 2 sampled {d2.sampled_accesses} of "
        f"{d1.sampled_accesses} accesses — nothing was skipped")
    assert d2.skipped_accesses > 0
    assert d1.skipped_accesses == 0


def test_dyndep_witnesses_are_bounded_sample_pairs():
    """``witnesses`` maps a loop to a short list of distinct
    (writer line, reader line) pairs, never an unbounded census."""
    prog = build_program(RECURRENCE_SRC)
    dd = analyze_dependences(prog)
    loop = prog.loop("t/10")
    pairs = dd.witnesses[loop.stmt_id]
    assert isinstance(pairs, list) and pairs
    assert len(pairs) <= 4
    assert len(set(pairs)) == len(pairs)
    for writer_line, reader_line in pairs:
        assert isinstance(writer_line, int)
        assert isinstance(reader_line, int)


def test_dyndep_silent_on_independent_loop():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(40)
      DO 10 i = 1, 40
        a(i) = i * 1.0
10    CONTINUE
      PRINT *, a(3)
      END
""")
    dd = analyze_dependences(prog)
    assert not dd.has_carried_dependence(prog.loop("t/10"))


def test_dyndep_privatization_aware():
    """write-then-read of a scratch in the same iteration never triggers."""
    prog = build_program("""
      PROGRAM t
      DIMENSION w(5), b(40)
      DO 10 i = 1, 40
        w(1) = i * 1.0
        b(i) = w(1) * 2.0
10    CONTINUE
      PRINT *, b(3)
      END
""")
    dd = analyze_dependences(prog)
    assert not dd.has_carried_dependence(prog.loop("t/10"))


def test_dyndep_skips_compiler_known_reductions():
    prog = build_program("""
      PROGRAM t
      COMMON /c/ s
      DIMENSION a(40)
      DO 10 i = 1, 40
        s = s + a(i)
10    CONTINUE
      PRINT *, s
      END
""")
    skip = reduction_stmt_ids(prog)
    dd = analyze_dependences(prog, skip_stmt_ids=skip)
    assert not dd.has_carried_dependence(prog.loop("t/10"))
    dd2 = analyze_dependences(prog)     # without compiler knowledge
    assert dd2.has_carried_dependence(prog.loop("t/10"))


def test_dyndep_mdg_observes_no_dependence(mdg_program):
    """Paper 4.1.2: the static RL dependence is not observed dynamically."""
    w = mdg_program
    dd = analyze_dependences(w, skip_stmt_ids=reduction_stmt_ids(w))
    assert not dd.has_carried_dependence(w.loop("interf/1000"))


# -- machine models --------------------------------------------------------------

def test_machine_mem_factor_monotone():
    m = MACHINES["alphaserver"]
    small = m.mem_factor(1024, 4)
    big = m.mem_factor(256 * 1024 * 1024, 4)
    assert big > small >= 1.0


def test_bandwidth_floor_zero_when_cached():
    m = MACHINES["origin"]
    assert m.bandwidth_floor_ops(10000, m.cache_bytes // 2) == 0.0
    assert m.bandwidth_floor_ops(10000, m.cache_bytes * 4) > 0.0


def test_with_processors():
    m = with_processors(ALPHASERVER_8400, 4)
    assert m.processors == 4
    assert m.spawn_ops == ALPHASERVER_8400.spawn_ops


# -- parallel executor -------------------------------------------------------------

BIG_PAR_SRC = """
      PROGRAM t
      DIMENSION a(64), b(64)
      DO 100 it = 1, 4
        PRINT *, it
        DO 10 i = 1, 64
          x1 = i * 0.5 + it
          x2 = x1 * x1 + 0.25
          x3 = x2 * 0.5 + x1
          x4 = x3 * x3 - x2
          x5 = x4 + x3 * 0.125
          a(i) = x5 * 0.5 + x4
          b(i) = a(i) * 0.25 + x5
10      CONTINUE
100   CONTINUE
      PRINT *, b(3)
      END
"""


def test_speedup_increases_with_processors():
    prog = build_program(BIG_PAR_SRC)
    plan = Parallelizer(prog).plan()
    ex = ParallelExecutor(prog, plan, ALPHASERVER_8400)
    results = ex.results_for([1, 2, 4, 8])
    sp = [results[p].speedup for p in (1, 2, 4, 8)]
    assert sp[0] == pytest.approx(1.0)
    assert sp[0] < sp[1] < sp[2] < sp[3]


def test_tiny_loops_suppressed():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(8)
      DO 10 i = 1, 8
        a(i) = i * 1.0
10    CONTINUE
      PRINT *, a(3)
      END
""")
    plan = Parallelizer(prog).plan()
    res = execute_parallel(prog, plan, ALPHASERVER_8400)
    assert res.speedup == pytest.approx(1.0)
    timing = list(res.loop_timings.values())[0]
    assert timing.suppressed == timing.invocations


def test_outputs_preserved_under_simulation(mdg_workload, mdg_program):
    from repro.runtime import run_program
    seq = run_program(mdg_program, mdg_workload.inputs)
    plan = Parallelizer(mdg_program).plan()
    res = execute_parallel(mdg_program, plan, ALPHASERVER_8400,
                           inputs=mdg_workload.inputs)
    assert res.outputs == seq.outputs


def test_reduction_strategies_ordering():
    """Section 6.3: naive whole-array finalization costs the most; the
    minimized region and staggered finalization each shave overhead."""
    prog = build_program("""
      PROGRAM t
      DIMENSION big(2000), a(64)
      DO 100 it = 1, 3
        DO 10 i = 1, 64
          x1 = i * 0.5
          x2 = x1 * x1
          x3 = x2 + x1 * 0.25
          big(mod(i, 40) + 1) = big(mod(i, 40) + 1) + x3
10      CONTINUE
100   CONTINUE
      PRINT *, big(1)
      END
""")
    plan = Parallelizer(prog).plan()
    assert plan.plan_by_name("t/10").parallel
    times = {}
    for strat in (NAIVE, MINIMIZED, STAGGERED):
        res = ParallelExecutor(prog, plan, ALPHASERVER_8400,
                               reduction_strategy=strat).run()
        times[strat] = res.par_ops
    assert times[NAIVE] >= times[MINIMIZED] >= times[STAGGERED]


def test_coverage_metric():
    prog = build_program(BIG_PAR_SRC)
    plan = Parallelizer(prog).plan()
    res = execute_parallel(prog, plan, ALPHASERVER_8400)
    assert 0.9 < res.coverage <= 1.0


# -- stride-sampling recall at corpus scale (generated population) ------------

def test_dyndep_stride_sampling_recall_over_seeded_population():
    """The documented §2.5.2 heuristic bound, measured over 100 seeded
    indirect-indexing programs (the synth ``ind`` profile pins
    distance-1 dependence chains through a COMMON index array):

    * recall of stride-1 exhaustive (loop, var) carried-dependence
      pairs must be >= 0.9 at strides 2 and 4 — the sampling window
      keeps adjacent iteration pairs, so distance-1 chains survive
      batch skipping (measured: exactly 1.0 on this population),
    * sampled access counts must shrink strictly monotonically as the
      stride grows (the speedup is real, not a no-op).
    """
    from repro.workloads import synth

    strides = (1, 2, 4)
    found = {s: 0 for s in strides}
    sampled = {s: 0 for s in strides}
    exhaustive_pairs = 0
    for seed in range(100):
        w = synth.generate(seed, "ind")
        base = None
        for stride in strides:
            # fresh build per run; stmt_ids are global counters, so
            # recall sets key on loop *names*, stable across builds
            prog = build_program(w.source, w.name)
            names = {l.stmt_id: l.name for l in prog.all_loops()}
            dd = analyze_dependences(prog, sample_stride=stride)
            pairs = {(names[sid], var)
                     for (sid, var), hits in dd.carried_by_var.items()
                     if hits}
            sampled[stride] += dd.sampled_accesses
            if stride == 1:
                base = pairs
                exhaustive_pairs += len(pairs)
                assert pairs, f"{w.name}: chain loop shows no dep"
            else:
                found[stride] += len(pairs & base)
    assert exhaustive_pairs >= 100  # >=1 carried pair per program
    for stride in (2, 4):
        recall = found[stride] / exhaustive_pairs
        assert recall >= 0.9, (
            f"stride-{stride} recall {recall:.3f} < 0.9 documented "
            f"bound ({found[stride]}/{exhaustive_pairs} pairs kept)")
    assert sampled[1] > sampled[2] > sampled[4] > 0, sampled
