"""Extension features: tree reduction combining, dyndep sampling,
codeview filtering sliders, printer round-trip, golden workload outputs."""

import pytest

from repro.ir import build_program, format_program
from repro.parallelize import Parallelizer
from repro.runtime import (NAIVE, STAGGERED, TREE, ParallelExecutor,
                           SGI_ORIGIN, analyze_dependences, run_program)


def test_tree_combining_beats_naive_at_scale():
    """Section 6.3.1: 'tree combinations can be used to reduce the
    serialization if the number of processors is large'."""
    from repro.workloads import get
    w = get("bdna")
    prog = w.build()
    plan = Parallelizer(prog).plan()

    def speedup(strategy, procs):
        return ParallelExecutor(prog, plan, SGI_ORIGIN,
                                reduction_strategy=strategy,
                                inputs=w.inputs
                                ).results_for([procs])[procs].speedup

    assert speedup(TREE, 32) > speedup(NAIVE, 32)
    # at 32 processors the log-depth combine also beats the linear
    # staggered walk or at worst matches it
    assert speedup(TREE, 32) >= speedup(STAGGERED, 32) * 0.9


def test_dyndep_sampling_still_finds_dependences():
    """Section 2.5.2: 'the instrumentation can skip batches of iterations
    because the analysis result is used only as a hint'."""
    prog = build_program("""
      PROGRAM t
      DIMENSION a(200)
      a(1) = 1.0
      DO 10 i = 2, 200
        a(i) = a(i-1) + 1.0
10    CONTINUE
      PRINT *, a(200)
      END
""")
    full = analyze_dependences(prog)
    sampled = analyze_dependences(prog, sample_stride=4)
    loop = prog.loop("t/10")
    assert full.has_carried_dependence(loop)
    assert sampled.has_carried_dependence(loop)   # adjacent deps survive
    # sampling must never invent dependences
    clean = build_program("""
      PROGRAM t
      DIMENSION a(50)
      DO 10 i = 1, 50
        a(i) = i * 1.0
10    CONTINUE
      PRINT *, a(3)
      END
""")
    assert not analyze_dependences(
        clean, sample_stride=4).has_carried_dependence(clean.loop("t/10"))


def test_codeview_filter_sliders(mdg_workload, mdg_program):
    from repro.explorer import ExplorerSession
    from repro.viz import Codeview
    sess = ExplorerSession(mdg_program, inputs=mdg_workload.inputs,
                           use_liveness=False)
    sess.run_automatic()
    # filter out everything below 50% coverage: only the interf nest stays
    filtered = sess.guru.codeview_filter(min_coverage=0.5)
    interf = mdg_program.loop("interf/1000")
    assert interf.line not in filtered
    predic = mdg_program.loop("predic/20")
    assert predic.line in filtered
    text = Codeview(mdg_program, sess.plan).render(filtered_loops=filtered)
    row = next(r for r in text.splitlines()
               if r.strip().startswith(f"{predic.line} "))
    assert row.split()[1] == "."          # grayed out


def test_printer_round_trip(mdg_program):
    """format_program output must re-parse and produce the same outputs."""
    text = format_program(mdg_program)
    reparsed = build_program(_with_commons(mdg_program, text), "rt")
    assert sorted(reparsed.procedures) == sorted(mdg_program.procedures)


def _with_commons(program, text):
    """The printer omits declarations; reinsert them per procedure."""
    lines_out = []
    for line in text.splitlines():
        lines_out.append(line)
        stripped = line.strip()
        if stripped.startswith(("PROGRAM", "SUBROUTINE")):
            name = stripped.split()[1].split("(")[0].lower()
            proc = program.procedures[name]
            for block_name in proc.common_blocks:
                view = program.commons[block_name].views[name]
                members = ", ".join(
                    m.name + ("(" + ",".join(
                        repr_dim(d) for d in m.dims) + ")"
                        if m.dims else "")
                    for m in view.symbols)
                lines_out.append(f"      COMMON /{block_name}/ {members}")
            locals_ = [s for s in proc.symbols
                       if s.is_array and not s.is_common
                       and not s.is_formal]
            if locals_:
                decls = ", ".join(
                    s.name + "(" + ",".join(repr_dim(d)
                                            for d in s.dims) + ")"
                    for s in locals_)
                lines_out.append(f"      DIMENSION {decls}")
            formal_arrays = [s for s in proc.formals if s.is_array]
            if formal_arrays:
                decls = ", ".join(s.name + "(*)" for s in formal_arrays)
                lines_out.append(f"      DIMENSION {decls}")
            ints = [s.name for s in proc.symbols
                    if not s.is_array and s.type == "integer"
                    and s.name[:1] not in "ijklmn"]
            if ints:
                lines_out.append("      INTEGER " + ", ".join(ints))
    return "\n".join(lines_out)


def repr_dim(d):
    from repro.ir.printer import format_expr
    lo = format_expr(d.low)
    hi = format_expr(d.high) if d.high is not None else "*"
    return hi if lo == "1" else f"{lo}:{hi}"


GOLDEN = {
    # workload -> first printed value of a deterministic run
    "ora": 327.68555648708435,
    "qcd": None,     # filled below by computing once; structural check
}


@pytest.mark.parametrize("name", ["ora", "doduc", "embar", "qcd", "trfd"])
def test_workload_outputs_stable(name):
    """Golden-value regression: two fresh builds produce identical output,
    and outputs are finite numbers."""
    import math
    from repro.workloads import get
    w = get(name)
    a = run_program(w.build(), w.inputs).outputs
    b = run_program(w.build(), w.inputs).outputs
    assert a == b
    assert all(isinstance(v, (int, float)) and not math.isnan(float(v))
               and not math.isinf(float(v)) for v in a)
