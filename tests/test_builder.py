"""IR lowering: symbol resolution, GOTO elimination, COMMON layout."""

import pytest

from repro.ir import build_program
from repro.ir.statements import (AssignStmt, CycleStmt, IfStmt, LoopStmt,
                                 NoopStmt)
from repro.ir.expressions import ArrayRef, Intrinsic, UnaryOp, VarRef
from repro.lang.errors import BuildError


def test_goto_to_loop_terminator_becomes_cycle():
    prog = build_program("""
      PROGRAM t
      DO 85 l = 1, 10
        IF (l .EQ. 3) GO TO 85
        x = l * 1.0
85    CONTINUE
      END
""")
    loop = prog.loop("t/85")
    guard = loop.body.statements[0]
    assert isinstance(guard, IfStmt)
    inner = guard.arms[0][1].statements[0]
    assert isinstance(inner, CycleStmt)
    assert inner.target_label == 85


def test_goto_to_outer_loop_terminator():
    prog = build_program("""
      PROGRAM t
      DO 100 i = 1, 5
        DO 50 j = 1, 5
          IF (j .EQ. 2) GO TO 100
          x = i * j * 1.0
50      CONTINUE
100   CONTINUE
      END
""")
    inner = prog.loop("t/50")
    guard = inner.body.statements[0]
    cyc = guard.arms[0][1].statements[0]
    assert isinstance(cyc, CycleStmt)
    assert cyc.target_label == 100


def test_forward_goto_becomes_guard():
    """The mdg pattern: IF (c) GO TO 2355 jumps over statements."""
    prog = build_program("""
      PROGRAM t
      DO 2365 s = 1, 10
        IF (s .EQ. 5) GO TO 2355
        x = s * 2.0
        y = x + 1.0
2355    z = s * 1.0
2365  CONTINUE
      END
""")
    loop = prog.loop("t/2365")
    guard = loop.body.statements[0]
    assert isinstance(guard, IfStmt)
    cond = guard.arms[0][0]
    assert isinstance(cond, UnaryOp) and cond.op == "not"
    assert len(guard.arms[0][1].statements) == 2   # the two skipped assigns
    labelled = loop.body.statements[1]
    assert isinstance(labelled, AssignStmt)
    assert labelled.label == 2355


def test_unsupported_goto_raises():
    with pytest.raises(BuildError):
        build_program("""
      PROGRAM t
      GO TO 99
      x = 1.0
      END
""")


def test_array_vs_intrinsic_disambiguation():
    prog = build_program("""
      PROGRAM t
      DIMENSION a(10)
      a(1) = min(2.0, 3.0)
      x = a(1)
      END
""")
    assigns = [s for s in prog.procedure("t").statements()
               if isinstance(s, AssignStmt)]
    assert isinstance(assigns[0].target, ArrayRef)
    assert isinstance(assigns[0].value, Intrinsic)
    assert isinstance(assigns[1].value, ArrayRef)


def test_unknown_apply_raises():
    with pytest.raises(BuildError):
        build_program("      PROGRAM t\n      x = nosuch(3)\n      END\n")


def test_call_arity_checked():
    with pytest.raises(BuildError):
        build_program("""
      PROGRAM t
      CALL f(1.0)
      END
      SUBROUTINE f(a, b)
      a = b
      END
""")


def test_call_to_undefined_raises():
    with pytest.raises(BuildError):
        build_program("      PROGRAM t\n      CALL ghost\n      END\n")


def test_common_block_layout_offsets():
    prog = build_program("""
      PROGRAM t
      COMMON /blk/ a(10), s, b(5)
      a(1) = 1.0
      END
""")
    block = prog.commons["blk"]
    syms = {m.name: m for m in block.views["t"].symbols}
    assert syms["a"].common_offset == 0
    assert syms["s"].common_offset == 10
    assert syms["b"].common_offset == 11
    assert block.size == 16


def test_common_overlap_pairs_across_views():
    prog = build_program("""
      PROGRAM t
      COMMON /v/ x(10)
      x(1) = 1.0
      CALL f
      END
      SUBROUTINE f
      COMMON /v/ y(0:10)
      y(0) = 2.0
      END
""")
    pairs = prog.commons["v"].overlapping_pairs()
    names = {(a.name, b.name) for a, b in pairs}
    assert ("x", "y") in names or ("y", "x") in names


def test_implicit_typing():
    prog = build_program("""
      PROGRAM t
      ival = 3
      xval = 2.5
      END
""")
    table = prog.procedure("t").symbols
    assert table.lookup("ival").type == "integer"
    assert table.lookup("xval").type == "real"


def test_parameter_constant_folds():
    prog = build_program("""
      PROGRAM t
      PARAMETER (n = 4 * 5)
      DIMENSION a(n)
      a(1) = 1.0
      END
""")
    sym = prog.procedure("t").symbols.lookup("a")
    assert sym.constant_size() == 20


def test_loop_names_use_terminator_labels(simple_program):
    assert "main/20" in simple_program.loop_names()
    assert "fill/10" in simple_program.loop_names()


def test_continue_survives_as_noop():
    prog = build_program("""
      PROGRAM t
      DO 5 i = 1, 3
        x = i * 1.0
5     CONTINUE
      END
""")
    loop = prog.loop("t/5")
    assert isinstance(loop.body.statements[-1], NoopStmt)


def test_recursion_is_rejected():
    from repro.ir import CallGraph
    prog = build_program("""
      PROGRAM t
      CALL a
      END
      SUBROUTINE a
      CALL b
      END
      SUBROUTINE b
      CALL a
      END
""")
    with pytest.raises(ValueError, match="recursive"):
        CallGraph(prog)
