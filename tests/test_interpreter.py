"""Interpreter semantics: Fortran storage, control flow, calls, I/O."""

import pytest

from repro.ir import build_program
from repro.runtime import Interpreter, RuntimeErrorInProgram, run_program


def outputs(src, inputs=()):
    return run_program(build_program(src), inputs).outputs


def test_arithmetic_and_print():
    assert outputs("""
      PROGRAM t
      x = 2.0 + 3.0 * 4.0
      PRINT *, x
      END
""") == [14.0]


def test_do_loop_semantics():
    out = outputs("""
      PROGRAM t
      s = 0.0
      DO 10 i = 1, 5
        s = s + i
10    CONTINUE
      PRINT *, s, i
      END
""")
    assert out == [15.0, 6]        # index is hi+step after a DO loop


def test_zero_trip_loop():
    assert outputs("""
      PROGRAM t
      s = 1.0
      DO 10 i = 5, 1
        s = 99.0
10    CONTINUE
      PRINT *, s
      END
""") == [1.0]


def test_negative_step():
    assert outputs("""
      PROGRAM t
      s = 0.0
      DO 10 i = 10, 2, -2
        s = s + i
10    CONTINUE
      PRINT *, s
      END
""") == [30.0]


def test_cycle_via_goto():
    assert outputs("""
      PROGRAM t
      s = 0.0
      DO 10 i = 1, 6
        IF (mod(i, 2) .EQ. 0) GO TO 10
        s = s + i
10    CONTINUE
      PRINT *, s
      END
""") == [9.0]


def test_goto_outer_loop_cycle():
    assert outputs("""
      PROGRAM t
      s = 0.0
      DO 20 i = 1, 3
        DO 10 j = 1, 3
          IF (j .EQ. 2) GO TO 20
          s = s + 1.0
10      CONTINUE
        s = s + 100.0
20    CONTINUE
      PRINT *, s
      END
""") == [3.0]       # the +100 is always skipped


def test_forward_goto_guard():
    assert outputs("""
      PROGRAM t
      s = 0.0
      DO 30 i = 1, 4
        IF (i .GT. 2) GO TO 25
        s = s + 10.0
25      s = s + 1.0
30    CONTINUE
      PRINT *, s
      END
""") == [24.0]


def test_common_block_shared_across_procs():
    assert outputs("""
      PROGRAM t
      COMMON /b/ x(5), total
      DO 10 i = 1, 5
        x(i) = i * 1.0
10    CONTINUE
      CALL sumup
      PRINT *, total
      END
      SUBROUTINE sumup
      COMMON /b/ x(5), total
      total = 0.0
      DO 20 i = 1, 5
        total = total + x(i)
20    CONTINUE
      END
""") == [15.0]


def test_common_aliasing_between_views():
    """Differently-shaped views see the same storage (hydro2d)."""
    assert outputs("""
      PROGRAM t
      COMMON /v/ a(4)
      CALL w2
      PRINT *, a(1), a(2)
      END
      SUBROUTINE w2
      COMMON /v/ b(2,2)
      b(1,1) = 7.0
      b(2,1) = 8.0
      END
""") == [7.0, 8.0]


def test_scalar_copy_in_copy_out():
    assert outputs("""
      PROGRAM t
      n = 5
      CALL bump(n)
      PRINT *, n
      END
      SUBROUTINE bump(m)
      m = m + 1
      END
""") == [6]


def test_array_passed_by_reference():
    assert outputs("""
      PROGRAM t
      DIMENSION a(5)
      CALL fill2(a, 5)
      PRINT *, a(1), a(5)
      END
      SUBROUTINE fill2(q, n)
      DIMENSION q(*)
      DO 10 j = 1, n
        q(j) = j * 2.0
10    CONTINUE
      END
""") == [2.0, 10.0]


def test_element_actual_sequence_association():
    """CALL f(a(3), n) passes the storage starting at a(3) (hydro)."""
    assert outputs("""
      PROGRAM t
      DIMENSION a(10)
      DO 5 i = 1, 10
        a(i) = 0.0
5     CONTINUE
      CALL fill2(a(3), 4)
      PRINT *, a(2), a(3), a(6), a(7)
      END
      SUBROUTINE fill2(q, n)
      DIMENSION q(*)
      DO 10 j = 1, n
        q(j) = j * 1.0
10    CONTINUE
      END
""") == [0.0, 1.0, 4.0, 0.0]


def test_column_major_layout():
    assert outputs("""
      PROGRAM t
      DIMENSION a(3,3)
      CALL setflat(a)
      PRINT *, a(2,1), a(1,2)
      END
      SUBROUTINE setflat(q)
      DIMENSION q(9)
      DO 10 j = 1, 9
        q(j) = j * 1.0
10    CONTINUE
      END
""") == [2.0, 4.0]     # column-major: a(2,1)=flat 2, a(1,2)=flat 4


def test_lower_bound_dimensions():
    assert outputs("""
      PROGRAM t
      DIMENSION a(0:4)
      a(0) = 7.0
      a(4) = 9.0
      PRINT *, a(0), a(4)
      END
""") == [7.0, 9.0]


def test_read_consumes_inputs():
    assert outputs("""
      PROGRAM t
      READ *, n
      READ *, x
      PRINT *, n * 2, x + 0.5
      END
""", inputs=[21.0, 1.25]) == [42, 1.75]


def test_read_past_end_raises():
    with pytest.raises(RuntimeErrorInProgram):
        outputs("      PROGRAM t\n      READ *, n\n      END\n")


def test_integer_division_truncates():
    assert outputs("""
      PROGRAM t
      INTEGER a, b
      a = 7
      b = -7
      PRINT *, a / 2, b / 2
      END
""") == [3, -3]


def test_intrinsics():
    out = outputs("""
      PROGRAM t
      PRINT *, min(3.0, 1.0), max(3, 5), abs(-2.5), mod(10, 3)
      PRINT *, sqrt(16.0)
      END
""")
    assert out == [1.0, 5, 2.5, 1, 4.0]


def test_stop_halts():
    assert outputs("""
      PROGRAM t
      PRINT *, 1.0
      STOP
      PRINT *, 2.0
      END
""") == [1.0]


def test_return_from_subroutine():
    assert outputs("""
      PROGRAM t
      n = 1
      CALL f(n)
      PRINT *, n
      END
      SUBROUTINE f(m)
      m = 2
      RETURN
      m = 3
      END
""") == [2]


def test_exit_statement():
    assert outputs("""
      PROGRAM t
      s = 0.0
      DO 10 i = 1, 100
        IF (i .GT. 3) EXIT
        s = s + i
10    CONTINUE
      PRINT *, s
      END
""") == [6.0]


def test_ops_budget_enforced():
    with pytest.raises(RuntimeErrorInProgram):
        run_program(build_program("""
      PROGRAM t
      DO 10 i = 1, 1000000
        x = i * 1.0
10    CONTINUE
      END
"""), max_ops=1000)


def test_determinism(simple_program):
    a = run_program(simple_program)
    b = run_program(simple_program)
    assert a.outputs == b.outputs
    assert a.ops == b.ops
