"""Incremental per-procedure analysis: bit-parity, cone invalidation,
and the timing/ID correctness fixes that ride along.

The contract under test (ISSUE: incremental cone cache):

* a warm re-analysis served from the ``proc/`` cache is **bit-identical**
  to a cold full recompute — provenance lives only in spans/metrics;
* an edit to one procedure recomputes **exactly** its dependency cone
  (``incr.cone`` spans) and reuses everything else (``incr.reuse``);
* slices are demand-driven and keyed by the *down*-cone only.
"""

import json
import threading
import time

import pytest

from repro.analysis.incremental import (ConeIndex, IncrementalAnalyzer,
                                        IncrementalKeys,
                                        proc_source_segments,
                                        set_proc_store)
from repro.ir import build_program
from repro.obs import Tracer, activate
from repro.service.artifacts import ArtifactStore, canonical_json
from repro.service.jobs import (AnalysisRequest, Job, execute_request,
                                validate_options)
from repro.workloads import ALL, get


@pytest.fixture(autouse=True)
def _no_global_proc_store():
    """Tests wire stores explicitly; never leak one across tests."""
    set_proc_store(None)
    yield
    set_proc_store(None)


def _analyze(source, name, store, slice_names=(), workers=0):
    program = build_program(source, name)
    analyzer = IncrementalAnalyzer(program, source, store=store)
    return analyzer.analysis_artifact(slice_names=slice_names,
                                      workers=workers)


def _traced_analyze(source, name, store, slice_names=()):
    tracer = Tracer()
    with activate(tracer):
        artifact = _analyze(source, name, store, slice_names)
    spans = tracer.to_dicts()
    recomputed = {s["tags"]["proc"] for s in spans
                  if s["name"] == "incr.cone"
                  and s["tags"].get("kind") == "plan"}
    reused = {s["tags"]["proc"] for s in spans
              if s["name"] == "incr.reuse"
              and s["tags"].get("kind") == "plan"}
    return artifact, recomputed, reused


# -- whole-corpus bit parity --------------------------------------------------

def test_corpus_warm_analysis_is_bit_identical_to_cold(tmp_path):
    """Every corpus workload: a warm run (100% cache hits) must produce
    byte-for-byte the same artifact as the cold run that filled the
    cache — the canonical-JSON encodings are compared, which is exactly
    what the disk store persists."""
    for name in sorted(ALL):
        w = get(name)
        store = ArtifactStore(str(tmp_path / name))
        cold = _analyze(w.source, w.name, store)
        warm, recomputed, reused = _traced_analyze(w.source, w.name, store)
        assert canonical_json(cold) == canonical_json(warm), name
        assert recomputed == set(), f"{name}: warm run recomputed"
        assert reused == set(build_program(w.source, w.name).procedures)


@pytest.mark.parametrize("workload", ["mdg", "adm", "tomcatv", "trfd"])
def test_analysis_plan_matches_full_pipeline_plan(workload):
    """The demand-driven (lazy) analyzer must reach the very same
    verdicts as the eager full pipeline — the ``plan`` sections of the
    analysis-only artifact and the full job artifact are identical."""
    w = get(workload)
    incr = _analyze(w.source, w.name, ArtifactStore(None))
    full = execute_request(AnalysisRequest(workload))
    assert canonical_json(incr["plan"]) == canonical_json(full["plan"])


def test_comment_edit_recomputes_only_the_cone(tmp_path):
    """Inserting a comment into one procedure (content change, same
    semantics) recomputes exactly the procedures whose plan *value* key
    changed and still lands on a bit-identical artifact vs. a cold run.

    A comment edit leaves every ⟨R,E,W,M⟩ summary bit-identical, so the
    value-keyed second cache level re-anchors the rows of every
    procedure that only sees the victim through its *down*-cone (callee
    summaries are value-hashed); what still recomputes is the victim
    itself plus procedures with the victim in their *after*-cone — the
    liveness context is keyed by continuation sources."""
    for name in ("mdg", "trfd", "ocean"):
        w = get(name)
        program = build_program(w.source, w.name)
        store = ArtifactStore(str(tmp_path / name))
        _analyze(w.source, w.name, store)

        victim = list(program.procedures)[-1]
        at = program.procedures[victim].source_lines.start
        lines = w.source.splitlines()
        edited = "\n".join(lines[:at] + ["C edited"] + lines[at:])
        edited_program = build_program(edited, w.name)

        old_keys = IncrementalKeys(program, w.source)
        new_keys = IncrementalKeys(edited_program, edited)
        stale = {p for p in edited_program.procedures
                 if old_keys.plan_key(p) != new_keys.plan_key(p)}
        assert victim in stale

        expected = {p for p in edited_program.procedures
                    if p == victim or victim in new_keys.cones.after(p)}
        assert expected <= stale    # value level never widens a miss

        warm, recomputed, reused = _traced_analyze(edited, w.name, store)
        assert recomputed == expected, name
        assert reused == set(edited_program.procedures) - expected

        cold = _analyze(edited, w.name,
                        ArtifactStore(str(tmp_path / f"{name}-cold")))
        assert canonical_json(warm) == canonical_json(cold), name


# -- the cache-invalidation matrix --------------------------------------------

MATRIX_SRC = """      PROGRAM matrix
      COMMON /shared/ a(100), b(100), nsz
      nsz = 50
      CALL first
      CALL second
      CALL tail
      PRINT *, a(1), b(1)
      END

      SUBROUTINE first
      COMMON /shared/ a(100), b(100), nsz
      COMMON /aux/ w(100)
      DO 10 i = 1, nsz
        a(i) = i * 2.0
        w(i) = i * 0.5
10    CONTINUE
      END

      SUBROUTINE second
      COMMON /shared/ a(100), b(100), nsz
      COMMON /aux/ w(100)
      CALL leaf
      DO 20 i = 1, nsz
        b(i) = a(i) + w(i) * 0.25
20    CONTINUE
      END

      SUBROUTINE leaf
      COMMON /shared/ a(100), b(100), nsz
      DO 30 i = 1, nsz
        a(i) = a(i) * 0.5
30    CONTINUE
      END

      SUBROUTINE tail
      COMMON /shared/ a(100), b(100), nsz
      DO 40 i = 1, nsz
        b(i) = b(i) + a(i)
40    CONTINUE
      END
"""


def _matrix_case(tmp_path, tag, edited, expected_recompute):
    store = ArtifactStore(str(tmp_path / tag))
    _analyze(MATRIX_SRC, "matrix", store)
    warm, recomputed, reused = _traced_analyze(edited, "matrix", store)
    all_procs = set(build_program(edited, "matrix").procedures)
    assert recomputed == expected_recompute, tag
    assert reused == all_procs - expected_recompute, tag
    cold = _analyze(edited, "matrix",
                    ArtifactStore(str(tmp_path / f"{tag}-cold")))
    assert canonical_json(warm) == canonical_json(cold), tag


def test_matrix_cone_geometry():
    """The fixture's cones, spelled out: ``first`` is called first (so
    everything runs after it → wide after-cone), ``tail`` is called last
    (narrow cone — the survivor in every matrix case)."""
    cones = ConeIndex(build_program(MATRIX_SRC, "matrix"))
    assert cones.cone("tail") == ("matrix", "tail")
    assert cones.cone("second") == ("leaf", "matrix", "second", "tail")
    assert cones.cone("first") == ("first", "leaf", "matrix", "second",
                                   "tail")


def test_matrix_edit_procedure_body_region_neutral(tmp_path):
    """Changing a multiplier constant in ``first`` leaves its ⟨R,E,W,M⟩
    summary bit-identical (regions describe *which* elements are
    touched, not the values).  The value-keyed second cache level
    therefore re-anchors every caller's rows — only ``first`` itself
    re-plans."""
    edited = MATRIX_SRC.replace("a(i) = i * 2.0", "a(i) = i * 3.0")
    _matrix_case(tmp_path, "body", edited, {"first"})


def test_matrix_edit_procedure_body_region_changing(tmp_path):
    """Shrinking ``first``'s loop bound changes its write *region*, so
    the summary value hash changes and every procedure with ``first``
    in its down-cone (main) re-plans.  ``second``/``leaf``/``tail`` run
    after it — their liveness environments are unaffected, cache
    hits."""
    edited = MATRIX_SRC.replace("DO 10 i = 1, nsz",
                                "DO 10 i = 2, nsz")
    _matrix_case(tmp_path, "body-region", edited, {"matrix", "first"})


def test_matrix_edit_callee_signature(tmp_path):
    """Giving ``leaf`` a formal parameter edits two segments (callee +
    call site in ``second``); every cone containing either recomputes.
    ``tail``'s cone contains neither — cache hit."""
    edited = (MATRIX_SRC
              .replace("SUBROUTINE leaf", "SUBROUTINE leaf(m)")
              .replace("CALL leaf", "CALL leaf(2)")
              .replace("a(i) = a(i) * 0.5", "a(i) = a(i) * 0.5 * m"))
    _matrix_case(tmp_path, "sig", edited,
                 {"matrix", "first", "second", "leaf"})


def test_matrix_edit_common_declaration(tmp_path):
    """Splitting ``first``'s view of ``/aux/`` changes the block's
    layout signature.  ``second`` and ``leaf`` must recompute even
    though *no source hash in their cones changed* — ``/aux/`` is
    declared by a cone member, and COMMON signatures are program-wide.
    ``tail`` has no ``/aux/`` declarer in its cone — cache hit."""
    edited = MATRIX_SRC.replace(
        "COMMON /aux/ w(100)\n      DO 10",
        "COMMON /aux/ w(60), v(40)\n      DO 10")
    old_keys = IncrementalKeys(build_program(MATRIX_SRC, "matrix"),
                               MATRIX_SRC)
    new_keys = IncrementalKeys(build_program(edited, "matrix"), edited)
    # the proof that the COMMON term matters: second's cone hashes are
    # untouched by this edit, yet its plan key changes
    assert all(old_keys.hashes[q] == new_keys.hashes[q]
               for q in old_keys.cones.cone("second"))
    assert old_keys.plan_key("second") != new_keys.plan_key("second")
    _matrix_case(tmp_path, "common", edited,
                 {"matrix", "first", "second", "leaf"})


# -- demand-driven slicing -----------------------------------------------------

def test_slice_cache_survives_edits_outside_the_down_cone(tmp_path):
    """A slice from a use inside ``leaf`` never crosses upward past the
    exposed formals, so its cache key covers ``down(leaf) = {leaf}``
    only: editing ``tail`` must leave the slice entry warm."""
    store = ArtifactStore(str(tmp_path / "slices"))
    program = build_program(MATRIX_SRC, "matrix")
    loop = next(l.name for l in program.procedures["leaf"].loops())
    first = _analyze(MATRIX_SRC, "matrix", store, slice_names=[loop])

    edited = MATRIX_SRC.replace("b(i) = b(i) + a(i)",
                                "b(i) = b(i) + a(i) * 2.0")
    tracer = Tracer()
    with activate(tracer):
        second = _analyze(edited, "matrix", store, slice_names=[loop])
    reuse = [s for s in tracer.to_dicts() if s["name"] == "incr.reuse"
             and s["tags"].get("kind") == "slice"]
    assert len(reuse) == 1 and reuse[0]["tags"]["proc"] == "leaf"
    assert first["slices"] == second["slices"]


def test_slice_at_session_api():
    from repro.explorer.session import ExplorerSession
    w = get("mdg")
    session = ExplorerSession(build_program(w.source, w.name))
    session.run_automatic()
    slices = session.slice_at("interf/1000")
    assert slices and all(ds.program_slice.statements for ds in slices)
    with pytest.raises(ValueError, match="unknown loop"):
        session.slice_at("nonesuch/1")


def test_service_slice_option_and_analysis_only():
    w_opts = validate_options({"slice": "interf/1000",
                               "analysis_only": True})
    assert w_opts["slice"] == ["interf/1000"]
    full = execute_request(AnalysisRequest(
        "mdg", options={"slice": ["interf/1000"]}))
    assert "interf/1000" in full["slices"]
    assert full["slices"]["interf/1000"]          # rl is dependent
    only = execute_request(AnalysisRequest(
        "mdg", options={"analysis_only": True, "slice": ["interf/1000"]}))
    assert canonical_json(only["plan"]) == canonical_json(full["plan"])
    assert canonical_json(only["slices"]) == canonical_json(full["slices"])
    assert "execution" not in only and "profiles" not in only


def test_service_option_validation():
    with pytest.raises(ValueError, match="analysis_only"):
        validate_options({"analysis_only": True, "parallel_execute": True})
    with pytest.raises(ValueError, match="slice"):
        validate_options({"slice": [f"l{i}" for i in range(17)]})
    with pytest.raises(ValueError, match="slice"):
        validate_options({"slice": 7})
    with pytest.raises(ValueError, match="Guru"):
        execute_request(AnalysisRequest(
            "mdg", options={"analysis_only": True, "slice": ["targets"]}))


# -- fan-out -------------------------------------------------------------------

def test_worker_fanout_matches_sequential(tmp_path):
    """Independent cones computed on a spawn pool must persist the very
    same artifacts as a sequential run (key-for-key byte equality).

    The one exemption is ``after`` payloads: an after-proc summary
    composed over cache-*loaded* callee summaries carries call-site
    tags where a composition over same-process walked summaries keeps
    the raw (equally opaque) terms — semantically identical liveness
    context, different bytes.  The keys must still pair up, and the
    parity assertions elsewhere in this file prove the decisions
    derived from them are bit-identical."""
    w = get("mdg")
    seq_store = ArtifactStore(str(tmp_path / "seq"))
    par_store = ArtifactStore(str(tmp_path / "par"))
    seq = _analyze(w.source, w.name, seq_store)
    par = _analyze(w.source, w.name, par_store, workers=2)
    assert canonical_json(seq) == canonical_json(par)
    assert sorted(seq_store.keys()) == sorted(par_store.keys())
    for key in seq_store.keys():
        a, b = seq_store.get(key), par_store.get(key)
        if isinstance(a, dict) and set(a) == {"after"}:
            assert isinstance(b, dict) and set(b) == {"after"}, key
            continue
        assert canonical_json(a) == canonical_json(b), key


# -- source segmentation --------------------------------------------------------

def test_proc_source_segments_cover_the_file():
    program = build_program(MATRIX_SRC, "matrix")
    segments = proc_source_segments(MATRIX_SRC, program)
    assert set(segments) == set(program.procedures)
    assert "\n".join(segments[p.name] for p in sorted(
        program.procedures.values(),
        key=lambda p: p.source_lines.start)) == MATRIX_SRC.rstrip("\n")


# -- satellite: monotonic job durations -----------------------------------------

def test_job_duration_survives_wall_clock_step(monkeypatch):
    """``duration_s`` comes from a monotonic pair: a backwards NTP step
    between start and finish must not produce a negative duration."""
    job = Job(AnalysisRequest("trfd"), key="k")
    wall = iter([1000.0, 900.0])           # clock steps back 100s
    monkeypatch.setattr("repro.service.jobs.time.time",
                        lambda: next(wall))
    job.mark_running()
    job.mark_done()
    assert job.finished_at - job.started_at < 0     # wall pair is wrong
    assert job.duration_s is not None and 0 <= job.duration_s < 5.0
    assert job.to_dict()["duration_s"] == job.duration_s


def test_job_duration_none_until_finished():
    job = Job(AnalysisRequest("trfd"), key="k")
    assert job.duration_s is None
    job.mark_running()
    assert job.duration_s is None
    job.mark_done()
    assert job.duration_s >= 0


# -- satellite: span-id uniqueness -----------------------------------------------

def test_span_ids_unique_across_10k_rapid_spans():
    """Span ids must never collide, even for spans opened faster than
    the clock ticks and across threads (the old scheme mixed a pid with
    a millisecond timestamp)."""
    tracer = Tracer()
    ids = []
    lock = threading.Lock()

    def burst(n):
        local = []
        with activate(tracer):
            for _ in range(n):
                with tracer.span("s") as sp:
                    local.append(sp.span_id)
        with lock:
            ids.extend(local)

    threads = [threading.Thread(target=burst, args=(1250,))
               for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(ids) == 10_000
    assert len(set(ids)) == 10_000


def test_trace_ids_unique_for_rapid_tracers():
    ids = {Tracer().trace_id for _ in range(2000)}
    assert len(ids) == 2000


# -- satellite: artifact-store read/put race --------------------------------------

def test_store_get_never_caches_entry_overwritten_mid_read(tmp_path):
    """A disk read that races a concurrent ``put`` of the same key must
    not leave the *old* artifact in the memory LRU: the racing reader
    may return either version, but every later ``get`` sees the new
    one.  Deterministic replay: the read is intercepted at the stale
    window and a put is injected before the reader re-locks."""
    store = ArtifactStore(str(tmp_path))
    store.put("k" * 64, {"v": 1})
    store.clear_memory()

    real_read = store._read_disk

    def racing_read(key):
        stale = real_read(key)
        store.put(key, {"v": 2})        # lands inside the read window
        return stale

    store._read_disk = racing_read
    first = store.get("k" * 64)
    store._read_disk = real_read
    assert first == {"v": 2}            # memory already superseded it
    assert store.get("k" * 64) == {"v": 2}
    store.clear_memory()
    assert store.get("k" * 64) == {"v": 2}


def test_store_quarantined_key_not_refilled_with_stale_value(tmp_path):
    """Quarantine-then-rewrite: a reader that loaded bytes *before* the
    corruption was quarantined and rewritten must not resurrect them."""
    key = "q" * 64
    store = ArtifactStore(str(tmp_path))
    store.put(key, {"v": "old"})
    store.clear_memory()
    real_read = store._read_disk

    def racing_read(k):
        stale = real_read(k)
        store.corrupt_on_disk(k)        # out-of-band corruption + bump
        store.put(k, {"v": "new"})      # operator rewrites the key
        return stale

    store._read_disk = racing_read
    store.get(key)
    store._read_disk = real_read
    assert store.get(key) == {"v": "new"}


def test_store_concurrent_puts_same_key_keep_file_valid(tmp_path):
    """Hammer one key from many threads: unique tmp names mean no two
    writers ever interleave into one file — the survivor is always one
    complete, schema-valid artifact."""
    store = ArtifactStore(str(tmp_path))
    key = "c" * 64
    errors = []

    def writer(v):
        try:
            for i in range(50):
                store.put(key, {"v": v, "i": i})
        except Exception as exc:        # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(v,))
               for v in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    store.clear_memory()
    got = store.get(key)
    assert got is not None and got["v"] in range(8) and got["i"] == 49
    leftovers = list(store.root.glob("*/*.tmp"))
    assert leftovers == []
