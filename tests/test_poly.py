"""Polyhedral core: LinExpr algebra, systems, Fourier-Motzkin, sections."""

from fractions import Fraction

from repro.poly import (Constraint, LinExpr, Section, System, bounds_system,
                        dim, range_section)


# -- LinExpr -----------------------------------------------------------------

def test_linexpr_arithmetic():
    x = LinExpr.var("x")
    y = LinExpr.var("y")
    e = 2 * x + y - 3
    assert e.coeff("x") == 2
    assert e.coeff("y") == 1
    assert e.const == -3
    assert (e - e).is_constant()


def test_linexpr_substitute():
    x = LinExpr.var("x")
    e = 3 * x + 1
    out = e.substitute("x", LinExpr.var("y") + 2)
    assert out.coeff("y") == 3
    assert out.const == 7


def test_linexpr_rename_and_equality():
    e1 = LinExpr.var("a") + 5
    e2 = e1.rename({"a": "b"})
    assert e2 == LinExpr.var("b") + 5
    assert e1 != e2


def test_linexpr_zero_coeffs_dropped():
    x = LinExpr.var("x")
    e = x - x
    assert e.variables() == ()


# -- System emptiness / containment ---------------------------------------------

def test_empty_system_detected():
    x = LinExpr.var("x")
    sys_ = System([Constraint.ge(x, 5), Constraint.le(x, 3)])
    assert sys_.is_empty()


def test_satisfiable_system():
    x = LinExpr.var("x")
    sys_ = System([Constraint.ge(x, 1), Constraint.le(x, 10)])
    assert not sys_.is_empty()


def test_equality_contradiction():
    x = LinExpr.var("x")
    sys_ = System([Constraint.eq(x, 3), Constraint.eq(x, 4)])
    assert sys_.is_empty()


def test_multivar_emptiness():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    # x >= y + 1 and y >= x  -> empty
    sys_ = System([Constraint.ge(x, y + 1), Constraint.ge(y, x)])
    assert sys_.is_empty()


def test_containment():
    small = bounds_system("x", 2, 5)
    big = bounds_system("x", 1, 10)
    assert big.contains(small)
    assert not small.contains(big)


def test_projection_keeps_relations():
    # {d = i + 1, 1 <= i <= 9} project i -> {2 <= d <= 10}
    d, i = LinExpr.var("d"), LinExpr.var("i")
    sys_ = System([Constraint.eq(d, i + 1),
                   Constraint.ge(i, 1), Constraint.le(i, 9)])
    proj = sys_.project_away(["i"])
    assert not proj.and_also(Constraint.eq(d, 2)).is_empty()
    assert not proj.and_also(Constraint.eq(d, 10)).is_empty()
    assert proj.and_also(Constraint.eq(d, 1)).is_empty()
    assert proj.and_also(Constraint.eq(d, 11)).is_empty()


def test_projection_never_eliminates_kept_vars():
    # regression: Gaussian substitution must not erase the kept dimension
    d, k, i = LinExpr.var("_d0"), LinExpr.var("k"), LinExpr.var("i")
    sys_ = System([Constraint.eq(d - k - 34 * i, 0),
                   Constraint.ge(k, 11), Constraint.le(k, 14)])
    proj = sys_.project_away(["k"])
    assert "_d0" in proj.variables()
    # d = k + 34 i with k in [11, 14]: for i = 1, d in [45, 48]
    probe = proj.and_also(Constraint.eq(i, 1), Constraint.eq(d, 45))
    assert not probe.is_empty()
    probe2 = proj.and_also(Constraint.eq(i, 1), Constraint.eq(d, 49))
    assert probe2.is_empty()


def test_sample_point_oracle_agrees():
    x, y = LinExpr.var("x"), LinExpr.var("y")
    sys_ = System([Constraint.ge(x + y, 3), Constraint.le(x, 2),
                   Constraint.le(y, 2)])
    assert (sys_.sample_point() is not None) == (not sys_.is_empty())


# -- Sections ------------------------------------------------------------------

def test_section_union_intersect():
    a = range_section(1, 10)
    b = range_section(5, 20)
    u = a.union(b)
    i = a.intersect(b)
    assert i.contains(range_section(5, 10))
    assert u.contains(a) and u.contains(b)


def test_section_subtract_exact():
    a = range_section(1, 10)
    b = range_section(4, 6)
    d = a.subtract(b)
    assert d.contains(range_section(1, 3))
    assert d.contains(range_section(7, 10))
    assert not d.intersects(range_section(5, 5))


def test_section_subtract_everything():
    a = range_section(1, 10)
    assert a.subtract(Section.universe()).is_empty()
    assert a.subtract(a).is_empty()


def test_point_section():
    p = Section.point([LinExpr.constant(7)])
    assert p.intersects(range_section(1, 10))
    assert not p.intersects(range_section(8, 10))


def test_symbolic_range_subtraction():
    n = LinExpr.var("n")
    written = range_section(2, n)
    read = range_section(1, n)
    exposed = read.subtract(written)
    # only element 1 remains exposed
    assert exposed.intersects(range_section(1, 1))
    probe = exposed.intersect(range_section(2, 2))
    # element 2 is only exposed if n < 2; with n >= 2 constraint it's gone
    constrained = probe.constrain(Constraint.ge(n, 2))
    assert constrained.is_empty()


def test_two_dim_section():
    from repro.poly import dim as d
    sec = Section([System([
        Constraint.ge(LinExpr.var(d(0)), 1), Constraint.le(LinExpr.var(d(0)), 4),
        Constraint.ge(LinExpr.var(d(1)), 1), Constraint.le(LinExpr.var(d(1)), 4)])])
    row = Section([System([Constraint.eq(LinExpr.var(d(0)), 2),
                           Constraint.ge(LinExpr.var(d(1)), 1),
                           Constraint.le(LinExpr.var(d(1)), 4)])])
    assert sec.contains(row)
    assert not row.contains(sec)


def test_section_project_away_closure():
    i = LinExpr.var("i")
    sec = Section.point([i]).constrain(
        Constraint.ge(i, 1), Constraint.le(i, 8))
    closed = sec.project_away(["i"])
    assert closed.contains(range_section(1, 8))
    assert not closed.intersects(range_section(9, 9))


def test_free_variables_excludes_dims():
    i = LinExpr.var("i")
    sec = Section.point([i + 1])
    assert sec.free_variables() == ("i",)
