"""Tokenizer behaviour: labels, dotted operators, comments, numbers."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import (EOF, FLOAT, IDENT, INT, KW, LABEL, NEWLINE,
                              OP, tokenize)


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)
            if t.kind not in (NEWLINE, EOF)]


def test_statement_label_is_extracted():
    toks = kinds("100 CONTINUE")
    assert toks[0] == (LABEL, 100)
    assert toks[1] == (KW, "continue")


def test_do_loop_header_tokens():
    toks = kinds("      DO 10 i = 1, n")
    assert (KW, "do") in toks
    assert (INT, 10) in toks
    assert (IDENT, "i") in toks


def test_dotted_relational_operators_normalize():
    toks = kinds("IF (a .LT. b .AND. c .GE. 2) x = 1")
    values = [v for k, v in toks if k == OP]
    assert "<" in values
    assert ">=" in values
    assert "and" in values


def test_modern_relational_operators():
    toks = kinds("x = a <= b")
    assert (OP, "<=") in toks


def test_go_to_two_words():
    toks = kinds("GO TO 85")
    assert toks[0] == (KW, "goto")
    assert toks[1] == (INT, 85)


def test_end_do_and_end_if_two_words():
    assert kinds("END DO")[0] == (KW, "enddo")
    assert kinds("END IF")[0] == (KW, "endif")
    assert kinds("ELSE IF")[0] == (KW, "elseif")


def test_column_one_comment_skipped():
    toks = kinds("C this is a comment\n      x = 1")
    assert toks[0] == (IDENT, "x")


def test_call_at_column_one_is_not_a_comment():
    toks = kinds("CALL foo")
    assert toks[0] == (KW, "call")


def test_bang_comment_stripped():
    toks = kinds("      x = 1   ! trailing comment")
    assert toks[-1] == (INT, 1)


def test_numbers():
    toks = kinds("      x = 1.5E-3 + 2 + .25 + 1.")
    floats = [v for k, v in toks if k == FLOAT]
    assert 1.5e-3 in floats
    assert 0.25 in floats
    assert 1.0 in floats
    assert (INT, 2) in toks


def test_float_not_confused_with_dotted_op():
    toks = kinds("IF (x .GT. 2.5) y = 1")
    assert (FLOAT, 2.5) in toks
    assert (OP, ">") in toks


def test_integer_before_dotted_operator():
    toks = kinds("IF (1.LT.n) x = 2")
    assert (INT, 1) in toks
    assert (OP, "<") in toks


def test_case_insensitive_keywords():
    assert kinds("do 10 I = 1, N")[0] == (KW, "do")


def test_string_literal():
    toks = kinds("      PRINT *, 'hello world'")
    assert ("STRING", "hello world") in toks


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("      x = 'oops")


def test_double_star_power():
    toks = kinds("x = y ** 2")
    assert (OP, "**") in toks


def test_true_false_literals():
    toks = kinds("x = .TRUE.")
    assert (KW, "true") in toks
