"""Scalar liveness, alias analysis, regions, viz."""

from repro.analysis import ScalarLiveness, Steensgaard, fortran_alias_pairs
from repro.ir import CallGraph, RegionGraph, build_program
from repro.viz import CallGraphView, Codeview, SourceView, render_slice


# -- scalar liveness ---------------------------------------------------------

def test_scalar_liveness_upwards_exposed():
    prog = build_program("""
      PROGRAM t
      y = x + 1.0
      x = 2.0
      z = x
      PRINT *, y, z
      END
""")
    sl = ScalarLiveness(prog.procedure("t"))
    exposed = {s.name for s in sl.upwards_exposed()}
    assert "x" in exposed            # read before its write
    assert "z" not in exposed


def test_scalar_liveness_through_loop():
    prog = build_program("""
      PROGRAM t
      s = 0.0
      DO 10 i = 1, 5
        s = s + i
10    CONTINUE
      PRINT *, s
      END
""")
    sl = ScalarLiveness(prog.procedure("t"))
    # s is defined before use at entry: not upwards exposed
    assert "s" not in {x.name for x in sl.upwards_exposed()}


# -- Steensgaard -------------------------------------------------------------

def test_steensgaard_address_and_copy():
    st = Steensgaard()
    st.address("p", "x")       # p = &x
    st.copy("q", "p")          # q = p
    st.address("r", "y")       # r = &y
    assert st.may_alias("x", "x")
    # p and q point to the same class; x unified with nothing else
    assert not st.may_alias("x", "y")


def test_steensgaard_unification_is_symmetric():
    st = Steensgaard()
    st.address("p", "a")
    st.address("p", "b")       # p may point to both -> a, b unify
    assert st.may_alias("a", "b")
    assert st.may_alias("b", "a")


def test_steensgaard_store_load():
    st = Steensgaard()
    st.address("p", "x")
    st.address("q", "y")
    st.store("p", "q")         # *p = q  => x may hold &y
    st.load("r", "p")          # r = *p  => r may point where x points
    classes = st.equivalence_classes()
    assert any({"x"} <= c for c in classes)


def test_steensgaard_strong_update_subclasses():
    st = Steensgaard()
    st.address("p", "a")
    st.address("p", "b")
    out = st.alias_classes_with_subclasses(["a"])
    cls = next(c for c in out if "a" in c[0] | c[1])
    strong, weak = cls
    assert "a" in strong
    assert "b" in weak


def test_fortran_alias_pairs(mdg_program):
    pairs = fortran_alias_pairs(mdg_program)
    kinds = {k for k, _, _ in pairs}
    assert "param" in kinds           # dists(i, j) formals
    # common overlap requires differing views; mdg has uniform views
    assert all(k in ("param", "common") for k in kinds)


def test_fortran_common_alias_pairs():
    from repro.workloads import get
    prog = get("hydro2d").build()
    pairs = fortran_alias_pairs(prog)
    common = [(a, b) for k, a, b in pairs if k == "common"]
    assert any("vz" in a and "vz1" in b or "vz1" in a and "vz" in b
               for a, b in common)


# -- regions -------------------------------------------------------------------

def test_region_graph_orders(simple_program):
    rg = RegionGraph(simple_program)
    order = [r.name for r in rg.bottom_up()]
    # callee (fill) regions come before caller (main) regions
    assert order.index("fill") < order.index("main")
    # loop body precedes loop precedes procedure
    assert order.index("main/20.body") < order.index("main/20") \
        < order.index("main")


def test_callgraph_orders(simple_program):
    cg = CallGraph(simple_program)
    bu = cg.bottom_up_order()
    assert bu.index("fill") < bu.index("main")
    assert cg.top_down_order()[0] in ("main",)


# -- viz ----------------------------------------------------------------------

def test_codeview_renders_loops(mdg_program):
    from repro.parallelize import Parallelizer
    plan = Parallelizer(mdg_program).plan()
    view = Codeview(mdg_program, plan)
    text = view.render(focus=mdg_program.loop("interf/1000"))
    assert ">" in text                # focus bar
    assert "#" in text                # sequential loop lines
    assert "o" in text                # parallel loop lines
    assert "legend" in view.legend()


def test_source_view_highlights():
    prog = build_program("      PROGRAM t\n      x = 1.0\n      END\n")
    view = SourceView(prog)
    out = view.render(1, 3, highlight_lines={2})
    assert "x = 1.0" in out
    assert any(line.lstrip().startswith("2 *") for line in out.splitlines())


def test_callgraph_view(mdg_program):
    view = CallGraphView(mdg_program)
    out = view.render()
    assert "mdg" in out and "interf" in out


def test_render_slice(mdg_program):
    from repro.slicing import Slicer
    from repro.ir.statements import AssignStmt
    slicer = Slicer(mdg_program)
    loop = mdg_program.loop("interf/1000")
    interf = mdg_program.procedure("interf")
    rl = interf.symbols.lookup("rl")
    stmt = next(s for s in loop.body.walk()
                if isinstance(s, AssignStmt) and "rl" in repr(s.value))
    res = slicer.slice_of_use(stmt, rl, region_loop=loop)
    text = render_slice(mdg_program, res, around_loop=loop)
    assert "slice:" in text
    assert "interf" in text
