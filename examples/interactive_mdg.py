#!/usr/bin/env python
"""The section-4.1 case study, replayed as a scripted Explorer session.

Walks the exact path the paper describes for the Perfect Club ``mdg``
benchmark:

1. automatic parallelization (respectable coverage, no speedup),
2. the Parallelization Guru ranks the important sequential loops and
   reports interf/1000 — huge coverage, one static dependence on RL,
   no dynamic dependence observed,
3. the Explorer presents the pruned program/control slices of the RL
   references (Fig 4-3) and the codeview,
4. the user asserts RL privatizable; the Assertion Checker propagates the
   assertion to the sibling work arrays and the recompiled program speeds
   up ~6x on 8 processors (Fig 4-4, Fig 4-10).

Run:  python examples/interactive_mdg.py
"""

from repro.explorer import ExplorerSession
from repro.runtime import ALPHASERVER_8400, ParallelExecutor
from repro.viz import Codeview, render_slice
from repro.workloads import get


def main() -> None:
    workload = get("mdg")
    program = workload.build()
    session = ExplorerSession(program, inputs=workload.inputs,
                              use_liveness=False)

    # -- step 1: automatic parallelization --------------------------------
    auto = session.run_automatic()
    print("== automatic parallelization ==")
    print(f"coverage    : {session.coverage():.0%}   (paper: 73%)")
    print(f"granularity : {session.granularity_ms():.4f} ms "
          f"(paper: 0.002 ms)")
    print(f"speedup(8p) : {auto.speedup:.2f}x (paper: 1.0x)")

    # -- step 2: the Guru's target list ---------------------------------------
    print("\n== Parallelization Guru ==")
    for line in session.guru.strategy_lines():
        print(line)
    target = session.guru.targets()[0]

    # -- step 3: slices for the unresolved dependence -----------------------
    print(f"\n== slices for {target.name} ==")
    for dep in session.slices_for(target.loop):
        loop_lines = session.slicer.loop_line_count(target.loop)
        print(f"dependence on {dep.var.display_name}: "
              f"loop has {loop_lines} lines; "
              f"pruned program slice {dep.program_slice_ar.line_count()} "
              f"lines, control slice "
              f"{dep.control_slice_ar.line_count()} lines")
        print(render_slice(program, dep.program_slice_ar,
                           around_loop=target.loop))

    # codeview before user input
    print("\n== codeview (o=parallel, #=sequential, >=focus) ==")
    view = Codeview(program, session.plan)
    print(view.render(focus=target.loop))

    # -- step 4: the user's assertion ------------------------------------------
    print("\n== applying user assertions ==")
    outcomes, user = session.apply_assertions(workload.user_assertions)
    for o in outcomes:
        print(f"assertion {o.assertion}: "
              f"{'accepted' if o.accepted else 'REJECTED'}")
        for wmsg in o.warnings:
            print("  warning:", wmsg)

    ex = ParallelExecutor(program, session.plan, ALPHASERVER_8400,
                          inputs=workload.inputs)
    results = ex.results_for([4, 8])
    print(f"\ncoverage    : {session.coverage():.0%}   (paper: 98%)")
    print(f"speedup(4p) : {results[4].speedup:.2f}x (paper: 4.0x)")
    print(f"speedup(8p) : {results[8].speedup:.2f}x (paper: 6.0x)")
    assert session.plan.plan_by_name("interf/1000").parallel


if __name__ == "__main__":
    main()
