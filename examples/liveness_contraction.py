#!/usr/bin/env python
"""Chapter 5's applications of array liveness, on flo88 and hydro2d.

1. **Privatization** (section 5.4): hydro loops whose scratch rows have
   loop-variant written regions parallelize only when liveness proves the
   rows dead at loop exit.
2. **Array contraction** (section 5.6): flo88's fused smoothing loops
   carry large 2-D temporaries; contraction (Fig 5-11) shrinks ``d`` to a
   row and ``t`` to a scalar, and the Fig 5-12 sweep shows the scaling
   unlock on the 32-processor Origin.
3. **Common-block splitting** (section 5.5): hydro2d's differently-shaped
   views of /varh/ have disjoint live ranges and split into separate
   blocks.

Run:  python examples/liveness_contraction.py
"""

from repro.analysis import (FLOW_INSENSITIVE, FULL, ONE_BIT, ArrayDataFlow,
                            dead_fraction_per_program)
from repro.parallelize import (Parallelizer, contract_in_program,
                               split_pass)
from repro.runtime import ParallelExecutor, SGI_ORIGIN, run_program
from repro.workloads import get


def privatization_demo() -> None:
    print("== liveness-enabled privatization (hydro) ==")
    w = get("hydro")
    prog = w.build()
    without = Parallelizer(prog, use_liveness=False).plan()
    with_l = Parallelizer(prog, use_liveness=True).plan()
    gained = [l.name for l in with_l.parallel_loops()
              if not without.is_parallel(l)]
    print("loops recovered by array liveness:", ", ".join(gained))

    df = ArrayDataFlow(prog)
    for variant in (FLOW_INSENSITIVE, ONE_BIT, FULL):
        loops, mod, dead = dead_fraction_per_program(df, variant)
        print(f"  {variant:16s}: {dead}/{mod} modified variables dead "
              f"at loop exits ({dead / mod:.0%})")


def contraction_demo() -> None:
    print("\n== array contraction (flo88, Fig 5-11/5-12) ==")
    w = get("flo88_fused")
    prog = w.build()
    seq = run_program(prog, w.inputs).outputs

    plan = Parallelizer(prog, assertions=w.user_assertions).plan()
    sweep = ParallelExecutor(prog, plan, SGI_ORIGIN, inputs=w.inputs
                             ).results_for([1, 2, 4, 8, 16, 32])
    print("before contraction:",
          {p: round(r.speedup, 1) for p, r in sweep.items()})

    result = contract_in_program(prog)
    print("contracted:", ", ".join(f"{p}::{v} (-{d} dim)"
                                   for p, v, d in result.contracted))
    assert run_program(prog, w.inputs).outputs == seq   # semantics intact

    plan2 = Parallelizer(prog, assertions=w.user_assertions).plan()
    sweep2 = ParallelExecutor(prog, plan2, SGI_ORIGIN, inputs=w.inputs
                              ).results_for([1, 2, 4, 8, 16, 32])
    print("after contraction: ",
          {p: round(r.speedup, 1) for p, r in sweep2.items()})
    print("(paper: 6.3x -> 19.6x at 32 processors)")


def split_demo() -> None:
    print("\n== common-block live-range splitting (hydro2d, Fig 5-10) ==")
    w = get("hydro2d")
    prog = w.build()
    report = split_pass(prog)
    for block, pairs in report.splittable_pairs.items():
        print(f"  /{block}/ splittable; disjoint-live-range pairs: {pairs}")
    print("  blocks split:", report.split_blocks,
          "(/varn/ correctly kept: its views share values)")


if __name__ == "__main__":
    privatization_demo()
    contraction_demo()
    split_demo()
