#!/usr/bin/env python
"""Chapter 6's reduction analysis, end to end.

* recognition: scalar / regular-array / sparse / interprocedural
  reductions across the NAS + Perfect miniatures,
* impact: coverage with and without reduction recognition (Fig 6-4/6-5),
* implementation: the section-6.3 lowering strategies priced against each
  other on bdna's region and sparse reductions.

Run:  python examples/reduction_survey.py
"""

from repro.explorer.metrics import parallel_coverage
from repro.parallelize import (Parallelizer, lower_array_reduction,
                               lower_scalar_reduction)
from repro.runtime import (ATOMIC, MINIMIZED, NAIVE, STAGGERED,
                           ParallelExecutor, SGI_CHALLENGE,
                           profile_program)
from repro.workloads import get, nas_perfect


def impact_table() -> None:
    print("== reduction impact (Fig 6-4/6-5 style) ==")
    print(f"{'program':10s} {'cov with':>9s} {'cov w/o':>9s} "
          f"{'speedup4 with':>14s} {'speedup4 w/o':>13s}")
    for w in nas_perfect.WORKLOADS:
        prog = w.build()
        prof = profile_program(prog, w.inputs)
        plan_on = Parallelizer(prog, use_reductions=True).plan()
        plan_off = Parallelizer(prog, use_reductions=False).plan()
        cov_on = parallel_coverage(prog, plan_on, prof)
        cov_off = parallel_coverage(prog, plan_off, prof)
        sp_on = ParallelExecutor(prog, plan_on, SGI_CHALLENGE,
                                 inputs=w.inputs).results_for([4])[4]
        sp_off = ParallelExecutor(prog, plan_off, SGI_CHALLENGE,
                                  inputs=w.inputs).results_for([4])[4]
        print(f"{w.name:10s} {cov_on:9.0%} {cov_off:9.0%} "
              f"{sp_on.speedup:14.2f} {sp_off.speedup:13.2f}")


def lowering_strategies() -> None:
    print("\n== reduction lowering strategies on bdna (section 6.3) ==")
    w = get("bdna")
    prog = w.build()
    plan = Parallelizer(prog).plan()
    for strategy in (NAIVE, MINIMIZED, STAGGERED, ATOMIC):
        res = ParallelExecutor(prog, plan, SGI_CHALLENGE,
                               reduction_strategy=strategy,
                               inputs=w.inputs).run()
        print(f"  {strategy:10s}: speedup(4p) = {res.speedup:.2f}x")

    print("\ngenerated SPMD lowering for the sparse FOX reduction "
          "(section 6.3.5):")
    print(lower_array_reduction("fox", "+", strategy="atomic"))
    print("\nscalar lowering (section 6.3.1):")
    print(lower_scalar_reduction("s", "+"))


if __name__ == "__main__":
    impact_table()
    lowering_strategies()
