#!/usr/bin/env python
"""Quickstart: parallelize a small program end to end.

Covers the core pipeline in ~40 lines of API:

    source -> IR -> automatic parallelization -> simulated speedup

Run:  python examples/quickstart.py
"""

from repro.ir import build_program
from repro.parallelize import Parallelizer, annotate_source
from repro.runtime import ALPHASERVER_8400, execute_parallel, run_program

SOURCE = """
      PROGRAM demo
      DIMENSION a(2000), b(2000)
      INTEGER n
      n = 2000
      DO 10 i = 1, n
        a(i) = i * 0.5
10    CONTINUE
      s = 0.0
      DO 20 i = 2, n
        tmp = a(i-1) * 0.25 + a(i) * 0.5
        b(i) = tmp * tmp + a(i)
        s = s + b(i)
20    CONTINUE
      PRINT *, s
      END
"""


def main() -> None:
    # 1. Parse mini-Fortran into the resolved IR.
    program = build_program(SOURCE, "demo")
    print("loops:", ", ".join(program.loop_names()))

    # 2. Execute it sequentially (the interpreter is the ground truth).
    interp = run_program(program)
    print("sequential output:", interp.outputs, f"({interp.ops} ops)")

    # 3. Run the automatic interprocedural parallelizer.
    plan = Parallelizer(program).plan()
    for loop in program.all_loops():
        lp = plan.plan_for(loop)
        verdict = "PARALLEL" if lp.parallel else "sequential"
        detail = ", ".join(f"{v.display_name}:{v.status}"
                           for v in lp.vars.values())
        print(f"  {loop.name}: {verdict}  [{detail}]")

    # 4. Simulate execution on the paper's 8-processor AlphaServer.
    result = execute_parallel(program, plan, ALPHASERVER_8400)
    print(f"coverage {result.coverage:.0%}, "
          f"speedup on 8 processors: {result.speedup:.2f}x")
    assert result.outputs == interp.outputs   # simulation preserves results

    # 5. Show the annotated source the "recompiled" program corresponds to.
    print("\nannotated source:")
    print(annotate_source(program, plan))


if __name__ == "__main__":
    main()
